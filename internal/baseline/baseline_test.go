package baseline

import (
	"math"
	"math/rand"
	"testing"

	"insightalign/internal/recipe"
)

// syntheticObjective rewards a hidden target subset: QoR = overlap − extras.
func syntheticObjective(target recipe.Set) func(recipe.Set) float64 {
	return func(s recipe.Set) float64 {
		q := 0.0
		for i := range s {
			switch {
			case s[i] && target[i]:
				q += 1
			case s[i] && !target[i]:
				q -= 0.4
			}
		}
		return q
	}
}

// drive runs an optimizer against an objective and returns the best score.
func drive(o Optimizer, f func(recipe.Set) float64, waves, perWave int) float64 {
	best := math.Inf(-1)
	for w := 0; w < waves; w++ {
		for _, s := range o.Propose(perWave) {
			q := f(s)
			o.Observe(s, q)
			if q > best {
				best = q
			}
		}
	}
	return best
}

func targetSet() recipe.Set {
	var t recipe.Set
	t[2], t[7], t[19], t[33] = true, true, true, true
	return t
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"random", "bayesopt", "bo", "aco"} {
		o, err := NewByName(name, 1, 8)
		if err != nil || o == nil {
			t.Fatalf("NewByName(%q) failed: %v", name, err)
		}
	}
	if _, err := NewByName("bogus", 1, 8); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestRandomProposesDistinct(t *testing.T) {
	r := NewRandom(1, 8)
	seen := map[recipe.Set]bool{}
	for w := 0; w < 10; w++ {
		for _, s := range r.Propose(5) {
			if seen[s] {
				t.Fatalf("random proposed duplicate %s", s)
			}
			seen[s] = true
			if s.Count() > 8 {
				t.Fatalf("random exceeded size cap: %d", s.Count())
			}
		}
	}
}

func TestBayesOptBeatsRandomOnStructuredObjective(t *testing.T) {
	f := syntheticObjective(targetSet())
	// Average over seeds to damp luck.
	boTotal, rndTotal := 0.0, 0.0
	for seed := int64(0); seed < 6; seed++ {
		boTotal += drive(NewBayesOpt(seed, 8), f, 8, 5)
		rndTotal += drive(NewRandom(seed, 8), f, 8, 5)
	}
	if boTotal <= rndTotal {
		t.Fatalf("BO (%g) should beat random (%g) on a structured objective", boTotal, rndTotal)
	}
}

func TestACOConcentratesPheromone(t *testing.T) {
	target := targetSet()
	f := syntheticObjective(target)
	a := NewACO(3)
	drive(a, f, 20, 5)
	// Pheromone on target recipes should exceed the mean of non-targets.
	tSum, tN, oSum, oN := 0.0, 0, 0.0, 0
	for i := range a.pheromone {
		if target[i] {
			tSum += a.pheromone[i]
			tN++
		} else {
			oSum += a.pheromone[i]
			oN++
		}
	}
	if tSum/float64(tN) <= oSum/float64(oN) {
		t.Fatalf("target pheromone %g not above background %g", tSum/float64(tN), oSum/float64(oN))
	}
}

func TestACOImprovesOverWaves(t *testing.T) {
	// Learning signature: the MEAN quality of late-wave proposals should
	// exceed that of the first waves as pheromone concentrates on the
	// target recipes.
	f := syntheticObjective(targetSet())
	a := NewACO(4)
	meanOf := func(waves int) float64 {
		sum, n := 0.0, 0
		for w := 0; w < waves; w++ {
			for _, s := range a.Propose(5) {
				q := f(s)
				a.Observe(s, q)
				sum += q
				n++
			}
		}
		return sum / float64(n)
	}
	early := meanOf(4)
	meanOf(12) // burn-in
	late := meanOf(4)
	if late <= early {
		t.Fatalf("ACO proposals did not improve: early mean %g, late mean %g", early, late)
	}
}

func TestGPPosteriorInterpolates(t *testing.T) {
	b := NewBayesOpt(5, 8)
	var s1, s2 recipe.Set
	s1[0] = true
	s2[1], s2[2], s2[3], s2[4], s2[5] = true, true, true, true, true
	b.Observe(s1, 2.0)
	b.Observe(s2, -1.0)
	mu1, va1 := b.posterior(s1)
	if math.Abs(mu1-2.0) > 0.3 {
		t.Fatalf("posterior at observed point %g, want ≈2", mu1)
	}
	if va1 > 0.5 {
		t.Fatalf("variance at observed point should be small, got %g", va1)
	}
	// A far-away point reverts toward the prior with high variance.
	var far recipe.Set
	for i := 20; i < 40; i++ {
		far[i] = true
	}
	muF, vaF := b.posterior(far)
	if vaF <= va1 {
		t.Fatal("far point should be more uncertain than observed point")
	}
	if math.Abs(muF) > 1.0 {
		t.Fatalf("far point mean %g should revert toward prior 0", muF)
	}
}

func TestCholeskyNumerics(t *testing.T) {
	// Solve a known SPD system: K = [[4,2],[2,3]], y = [1, 2].
	K := []float64{4, 2, 2, 3}
	L, ok := cholesky(K, 2)
	if !ok {
		t.Fatal("cholesky failed on SPD matrix")
	}
	x := choleskySolve(L, 2, []float64{1, 2})
	// Verify K x = y.
	if math.Abs(4*x[0]+2*x[1]-1) > 1e-9 || math.Abs(2*x[0]+3*x[1]-2) > 1e-9 {
		t.Fatalf("cholesky solve wrong: %v", x)
	}
	// Non-SPD must fail.
	if _, ok := cholesky([]float64{1, 2, 2, 1}, 2); ok {
		t.Fatal("cholesky should reject non-SPD")
	}
}

func TestNormFunctions(t *testing.T) {
	if math.Abs(normCDF(0)-0.5) > 1e-12 {
		t.Fatal("normCDF(0) != 0.5")
	}
	if normCDF(5) < 0.999 || normCDF(-5) > 0.001 {
		t.Fatal("normCDF tails wrong")
	}
	if math.Abs(normPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatal("normPDF(0) wrong")
	}
}

func TestProposalsUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	_ = rng
	for _, name := range []string{"random", "bo", "aco"} {
		o, _ := NewByName(name, 7, 8)
		seen := map[recipe.Set]bool{}
		for w := 0; w < 5; w++ {
			sets := o.Propose(4)
			for _, s := range sets {
				if seen[s] {
					t.Errorf("%s proposed duplicate across waves", name)
				}
				seen[s] = true
				o.Observe(s, 0.1)
			}
		}
	}
}
