// Package baseline implements the black-box flow-tuning comparators
// surveyed in Section II of the paper: pure random search, Bayesian
// optimization with a Gaussian-process surrogate and expected-improvement
// acquisition (the BO family [2]-[5]), and ant colony optimization (ACO
// [6]). All optimize recipe-set selection under the same evaluation budget
// as InsightAlign, but without design insights — which is exactly the
// comparison that motivates the paper.
package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"insightalign/internal/recipe"
)

// Optimizer proposes recipe sets and learns from observed QoR scores
// (higher is better).
type Optimizer interface {
	// Name identifies the method.
	Name() string
	// Propose returns k recipe sets to evaluate next.
	Propose(k int) []recipe.Set
	// Observe feeds back the QoR of an evaluated set.
	Observe(s recipe.Set, qorScore float64)
}

// observation is a shared evaluated-point record.
type observation struct {
	set recipe.Set
	q   float64
}

// ---------------------------------------------------------------------------
// Random search

// Random proposes uniformly random recipe sets (with a size cap matching
// the dataset sampler) and never repeats an evaluated set.
type Random struct {
	rng  *rand.Rand
	maxK int
	seen map[recipe.Set]bool
}

// NewRandom creates a random-search baseline.
func NewRandom(seed int64, maxRecipesPerSet int) *Random {
	return &Random{
		rng:  rand.New(rand.NewSource(seed)),
		maxK: maxRecipesPerSet,
		seen: map[recipe.Set]bool{},
	}
}

// Name implements Optimizer.
func (r *Random) Name() string { return "random" }

// Propose implements Optimizer.
func (r *Random) Propose(k int) []recipe.Set {
	out := make([]recipe.Set, 0, k)
	for len(out) < k {
		var s recipe.Set
		n := r.rng.Intn(r.maxK + 1)
		perm := r.rng.Perm(recipe.N)
		for i := 0; i < n; i++ {
			s[perm[i]] = true
		}
		if r.seen[s] {
			continue
		}
		r.seen[s] = true
		out = append(out, s)
	}
	return out
}

// Observe implements Optimizer.
func (r *Random) Observe(s recipe.Set, _ float64) { r.seen[s] = true }

// ---------------------------------------------------------------------------
// Bayesian optimization

// BayesOpt fits a Gaussian process over recipe bit-vectors with a linear +
// RBF(Hamming) kernel — the linear term is a Bayesian per-recipe effect
// model (which bits help), the RBF term captures interaction residuals —
// and proposes candidates by expected improvement over a random candidate
// pool plus mutations of the best.
type BayesOpt struct {
	rng       *rand.Rand
	maxK      int
	obs       []observation
	seen      map[recipe.Set]bool
	LengthSq  float64 // RBF length scale squared (in Hamming distance)
	LinWeight float64 // per-bit linear kernel weight
	NoiseVar  float64
	PoolSize  int
	MutateTop int
}

// NewBayesOpt creates a BO baseline with standard hyperparameters.
func NewBayesOpt(seed int64, maxRecipesPerSet int) *BayesOpt {
	return &BayesOpt{
		rng:       rand.New(rand.NewSource(seed)),
		maxK:      maxRecipesPerSet,
		seen:      map[recipe.Set]bool{},
		LengthSq:  16,
		LinWeight: 1.0,
		NoiseVar:  0.05,
		PoolSize:  160,
		MutateTop: 40,
	}
}

// Name implements Optimizer.
func (b *BayesOpt) Name() string { return "bayesopt" }

// Observe implements Optimizer.
func (b *BayesOpt) Observe(s recipe.Set, q float64) {
	b.obs = append(b.obs, observation{s, q})
	b.seen[s] = true
}

func hamming(a, c recipe.Set) float64 {
	d := 0.0
	for i := range a {
		if a[i] != c[i] {
			d++
		}
	}
	return d
}

func (b *BayesOpt) kernel(a, c recipe.Set) float64 {
	d := hamming(a, c)
	lin := 0.0
	for i := range a {
		if a[i] && c[i] {
			lin++
		}
	}
	return b.LinWeight*lin + math.Exp(-d*d/(2*b.LengthSq))
}

// posterior returns the GP posterior mean and variance at x.
func (b *BayesOpt) posterior(x recipe.Set) (mu, va float64) {
	n := len(b.obs)
	if n == 0 {
		return 0, 1
	}
	// Build K + σ²I and solve via Cholesky.
	K := make([]float64, n*n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		y[i] = b.obs[i].q
		for j := 0; j <= i; j++ {
			v := b.kernel(b.obs[i].set, b.obs[j].set)
			if i == j {
				v += b.NoiseVar
			}
			K[i*n+j] = v
			K[j*n+i] = v
		}
	}
	L, ok := cholesky(K, n)
	if !ok {
		return 0, 1
	}
	alpha := choleskySolve(L, n, y)
	kx := make([]float64, n)
	for i := 0; i < n; i++ {
		kx[i] = b.kernel(x, b.obs[i].set)
	}
	mu = dot(kx, alpha)
	v := choleskySolveLower(L, n, kx)
	va = b.kernel(x, x) - dot(v, v)
	if va < 1e-9 {
		va = 1e-9
	}
	return mu, va
}

// Propose implements Optimizer: maximize expected improvement over a
// candidate pool.
func (b *BayesOpt) Propose(k int) []recipe.Set {
	pool := b.candidatePool()
	if len(b.obs) == 0 {
		if len(pool) > k {
			pool = pool[:k]
		}
		for _, s := range pool {
			b.seen[s] = true
		}
		return pool
	}
	best := math.Inf(-1)
	for _, o := range b.obs {
		if o.q > best {
			best = o.q
		}
	}
	type scored struct {
		s  recipe.Set
		ei float64
	}
	var cands []scored
	for _, s := range pool {
		mu, va := b.posterior(s)
		sd := math.Sqrt(va)
		z := (mu - best) / sd
		ei := (mu-best)*normCDF(z) + sd*normPDF(z)
		cands = append(cands, scored{s, ei})
	}
	// Selection of the k best by EI.
	out := make([]recipe.Set, 0, k)
	for len(out) < k && len(cands) > 0 {
		bi := 0
		for i := range cands {
			if cands[i].ei > cands[bi].ei {
				bi = i
			}
		}
		out = append(out, cands[bi].s)
		b.seen[cands[bi].s] = true
		cands = append(cands[:bi], cands[bi+1:]...)
	}
	return out
}

func (b *BayesOpt) candidatePool() []recipe.Set {
	var pool []recipe.Set
	seen := map[recipe.Set]bool{}
	addUnique := func(s recipe.Set) {
		if !b.seen[s] && !seen[s] {
			seen[s] = true
			pool = append(pool, s)
		}
	}
	for i := 0; i < b.PoolSize; i++ {
		var s recipe.Set
		n := b.rng.Intn(b.maxK + 1)
		perm := b.rng.Perm(recipe.N)
		for j := 0; j < n; j++ {
			s[perm[j]] = true
		}
		addUnique(s)
	}
	// Mutations of the best observed sets exploit locality.
	if len(b.obs) > 0 {
		bi := 0
		for i := range b.obs {
			if b.obs[i].q > b.obs[bi].q {
				bi = i
			}
		}
		for i := 0; i < b.MutateTop; i++ {
			s := b.obs[bi].set
			flips := 1 + b.rng.Intn(3)
			for f := 0; f < flips; f++ {
				j := b.rng.Intn(recipe.N)
				s[j] = !s[j]
			}
			addUnique(s)
		}
	}
	return pool
}

// ---------------------------------------------------------------------------
// Ant colony optimization

// ACO maintains a pheromone level per recipe; ants select each recipe with
// probability equal to its pheromone. Updates follow the MAX-MIN ant
// system: trails evaporate toward the best solutions found (a mix of
// best-so-far and best-of-wave), with floor/ceiling bounds that preserve
// exploration. This concentrates sampling on the best recipe subset even
// when absolute qualities are negative.
type ACO struct {
	rng         *rand.Rand
	pheromone   [recipe.N]float64
	Evaporation float64
	seen        map[recipe.Set]bool
	wave        []observation
	best        observation
	hasBest     bool
}

// NewACO creates an ACO baseline with uniform initial pheromone.
func NewACO(seed int64) *ACO {
	a := &ACO{
		rng:         rand.New(rand.NewSource(seed)),
		Evaporation: 0.15,
		seen:        map[recipe.Set]bool{},
	}
	for i := range a.pheromone {
		a.pheromone[i] = 0.15 // initial selection probability
	}
	return a
}

// Name implements Optimizer.
func (a *ACO) Name() string { return "aco" }

// Propose implements Optimizer.
func (a *ACO) Propose(k int) []recipe.Set {
	out := make([]recipe.Set, 0, k)
	for tries := 0; len(out) < k && tries < 50*k; tries++ {
		var s recipe.Set
		for i := range s {
			s[i] = a.rng.Float64() < a.pheromone[i]
		}
		if a.seen[s] || containsSet(out, s) {
			continue
		}
		out = append(out, s)
	}
	for len(out) < k { // degenerate pheromone: random fill
		var s recipe.Set
		for i := range s {
			s[i] = a.rng.Intn(2) == 1
		}
		if !a.seen[s] && !containsSet(out, s) {
			out = append(out, s)
		}
	}
	return out
}

// Observe implements Optimizer: accumulate a wave, then move trails toward
// the best-so-far and best-of-wave solutions.
func (a *ACO) Observe(s recipe.Set, q float64) {
	a.seen[s] = true
	a.wave = append(a.wave, observation{s, q})
	if !a.hasBest || q > a.best.q {
		a.best = observation{s, q}
		a.hasBest = true
	}
	if len(a.wave) < 5 {
		return
	}
	waveBest := a.wave[0]
	for _, o := range a.wave[1:] {
		if o.q > waveBest.q {
			waveBest = o
		}
	}
	for i := range a.pheromone {
		target := 0.0
		// 70% pull toward the best-so-far, 30% toward the wave winner.
		if a.best.set[i] {
			target += 0.7
		}
		if waveBest.set[i] {
			target += 0.3
		}
		a.pheromone[i] = (1-a.Evaporation)*a.pheromone[i] + a.Evaporation*target
		if a.pheromone[i] < 0.02 {
			a.pheromone[i] = 0.02
		}
		if a.pheromone[i] > 0.95 {
			a.pheromone[i] = 0.95
		}
	}
	a.wave = a.wave[:0]
}

// ---------------------------------------------------------------------------
// numerics

func cholesky(K []float64, n int) ([]float64, bool) {
	L := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := K[i*n+j]
			for p := 0; p < j; p++ {
				sum -= L[i*n+p] * L[j*n+p]
			}
			if i == j {
				if sum <= 0 {
					return nil, false
				}
				L[i*n+i] = math.Sqrt(sum)
			} else {
				L[i*n+j] = sum / L[j*n+j]
			}
		}
	}
	return L, true
}

// choleskySolve solves (L Lᵀ) x = y.
func choleskySolve(L []float64, n int, y []float64) []float64 {
	z := choleskySolveLower(L, n, y)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for j := i + 1; j < n; j++ {
			sum -= L[j*n+i] * x[j]
		}
		x[i] = sum / L[i*n+i]
	}
	return x
}

// choleskySolveLower solves L z = y.
func choleskySolveLower(L []float64, n int, y []float64) []float64 {
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := y[i]
		for j := 0; j < i; j++ {
			sum -= L[i*n+j] * z[j]
		}
		z[i] = sum / L[i*n+i]
	}
	return z
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func normPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

func containsSet(xs []recipe.Set, s recipe.Set) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// NewByName constructs a baseline optimizer by method name.
func NewByName(name string, seed int64, maxRecipesPerSet int) (Optimizer, error) {
	switch name {
	case "random":
		return NewRandom(seed, maxRecipesPerSet), nil
	case "bayesopt", "bo":
		return NewBayesOpt(seed, maxRecipesPerSet), nil
	case "aco":
		return NewACO(seed), nil
	default:
		return nil, fmt.Errorf("baseline: unknown optimizer %q", name)
	}
}
