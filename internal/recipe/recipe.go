// Package recipe defines the preconfigured flow recipe catalog of the
// paper's Table II: 40 recipes spanning design-intention tradeoffs, timing,
// clock tree synthesis, routing congestion, and global routing. Each recipe
// is a bundle of relative adjustments to flow.Params with a dedicated QoR
// intention; recipe sets (subsets of the catalog) compose by applying
// adjustments in ID order, which creates the complex interactions the
// recommender must learn.
package recipe

import (
	"fmt"
	"strings"

	"insightalign/internal/flow"
)

// Category groups recipes as in Table II of the paper.
type Category int

// Recipe categories.
const (
	Intention Category = iota // design intention tradeoffs
	Timing
	ClockTree
	RoutingCongestion
	GlobalRouting
	numCategories
)

func (c Category) String() string {
	return [...]string{
		"Design intention tradeoffs", "Timing", "Clock tree",
		"Routing congestion", "Global routing",
	}[c]
}

// Recipe is one preconfigured option bundle.
type Recipe struct {
	ID          int
	Name        string
	Category    Category
	Description string
	apply       func(*flow.Params)
}

// Apply applies the recipe's parameter adjustments in place.
func (r Recipe) Apply(p *flow.Params) { r.apply(p) }

// N is the catalog size (the paper integrates n = 40 distinct recipes).
const N = 40

// Set is a recipe subset over the catalog: Set[i] selects recipe ID i.
type Set [N]bool

// Count returns the number of selected recipes.
func (s Set) Count() int {
	n := 0
	for _, b := range s {
		if b {
			n++
		}
	}
	return n
}

// String renders the set as a 40-character bitstring (recipe 0 first).
func (s Set) String() string {
	var b strings.Builder
	for _, v := range s {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// ParseSet parses a bitstring produced by String.
func ParseSet(str string) (Set, error) {
	var s Set
	if len(str) != N {
		return s, fmt.Errorf("recipe: set string has %d chars, want %d", len(str), N)
	}
	for i, c := range str {
		switch c {
		case '1':
			s[i] = true
		case '0':
		default:
			return s, fmt.Errorf("recipe: invalid character %q in set string", c)
		}
	}
	return s, nil
}

// Bits returns the decisions as a 0/1 slice (the model's token sequence).
func (s Set) Bits() []int {
	out := make([]int, N)
	for i, v := range s {
		if v {
			out[i] = 1
		}
	}
	return out
}

// FromBits builds a Set from a 0/1 slice of length N.
func FromBits(bits []int) (Set, error) {
	var s Set
	if len(bits) != N {
		return s, fmt.Errorf("recipe: %d bits, want %d", len(bits), N)
	}
	for i, b := range bits {
		s[i] = b != 0
	}
	return s, nil
}

// ApplySet applies every selected recipe to a copy of base, in ID order,
// and returns the resulting parameters.
func ApplySet(base flow.Params, s Set) flow.Params {
	p := base
	for _, r := range Catalog() {
		if s[r.ID] {
			r.apply(&p)
		}
	}
	clampParams(&p)
	return p
}

// clamp helpers keep composed adjustments within engine-legal ranges.

func cf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func ci(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// clampParams enforces global legality after arbitrary recipe composition.
func clampParams(p *flow.Params) {
	p.TargetUtil = cf(p.TargetUtil, 0.45, 0.95)
	p.SpreadStrength = cf(p.SpreadStrength, 0.1, 1.5)
	p.TimingDrivenWeight = cf(p.TimingDrivenWeight, 0, 1.5)
	p.PlacementPerturb = cf(p.PlacementPerturb, 0, 0.5)
	p.PlaceCongestionEff = cf(p.PlaceCongestionEff, 0, 1)
	p.PlacementSteps = ci(p.PlacementSteps, 2, 6)
	p.SetupFixWeight = cf(p.SetupFixWeight, 0, 1)
	p.HoldFixWeight = cf(p.HoldFixWeight, 0, 1)
	p.UpsizeAggressiveness = cf(p.UpsizeAggressiveness, 0, 1)
	p.MaxOptPasses = ci(p.MaxOptPasses, 1, 6)
	p.CTSSkewTargetPS = cf(p.CTSSkewTargetPS, 3, 80)
	if p.CTSBufferDrive != 1 && p.CTSBufferDrive != 2 && p.CTSBufferDrive != 4 {
		p.CTSBufferDrive = 2
	}
	p.CTSMaxFanout = ci(p.CTSMaxFanout, 4, 48)
	p.CTSLatencyEffort = cf(p.CTSLatencyEffort, 0, 1)
	p.RouteIterations = ci(p.RouteIterations, 0, 10)
	p.CongestionWeight = cf(p.CongestionWeight, 0, 6)
	p.DetourPenalty = cf(p.DetourPenalty, 0.02, 3)
	p.TrackUtil = cf(p.TrackUtil, 0.4, 1.0)
	p.RouteExpansion = ci(p.RouteExpansion, 0, 6)
	p.LeakageRecoveryEffort = cf(p.LeakageRecoveryEffort, 0, 1)
	p.RecoverySlackMarginPS = cf(p.RecoverySlackMarginPS, 5, 120)
	p.ClockGatingEfficiency = cf(p.ClockGatingEfficiency, 0, 0.9)
}
