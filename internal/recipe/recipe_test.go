package recipe

import (
	"math/rand"
	"testing"
	"testing/quick"

	"insightalign/internal/flow"
)

func TestCatalogSize(t *testing.T) {
	cat := Catalog()
	if len(cat) != N {
		t.Fatalf("catalog has %d recipes, want %d", len(cat), N)
	}
	for i, r := range cat {
		if r.ID != i {
			t.Fatalf("recipe %d has ID %d", i, r.ID)
		}
		if r.Name == "" || r.Description == "" {
			t.Fatalf("recipe %d missing name or description", i)
		}
		if r.apply == nil {
			t.Fatalf("recipe %d has no apply function", i)
		}
	}
}

func TestCatalogCoversTableIICategories(t *testing.T) {
	// Table II of the paper lists 5 recipe categories; all must be
	// populated.
	counts := map[Category]int{}
	for _, r := range Catalog() {
		counts[r.Category]++
	}
	want := map[Category]int{
		Intention: 8, Timing: 10, ClockTree: 8, RoutingCongestion: 8, GlobalRouting: 6,
	}
	for c, n := range want {
		if counts[c] != n {
			t.Errorf("category %v has %d recipes, want %d", c, counts[c], n)
		}
	}
}

func TestUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Catalog() {
		if seen[r.Name] {
			t.Fatalf("duplicate recipe name %q", r.Name)
		}
		seen[r.Name] = true
	}
}

func TestByNameAndCategory(t *testing.T) {
	r, ok := ByName("cts_tight_skew")
	if !ok || r.Category != ClockTree {
		t.Fatalf("ByName failed: %+v ok=%v", r, ok)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName should miss")
	}
	if got := len(ByCategory(Timing)); got != 10 {
		t.Fatalf("ByCategory(Timing) = %d, want 10", got)
	}
}

func TestEveryRecipeChangesParams(t *testing.T) {
	base := flow.DefaultParams()
	for _, r := range Catalog() {
		p := base
		r.Apply(&p)
		if p == base {
			t.Errorf("recipe %q does not change any parameter", r.Name)
		}
	}
}

func TestEveryRecipeKeepsParamsValidAlone(t *testing.T) {
	base := flow.DefaultParams()
	for _, r := range Catalog() {
		var s Set
		s[r.ID] = true
		p := ApplySet(base, s)
		if err := p.Validate(); err != nil {
			t.Errorf("recipe %q alone yields invalid params: %v", r.Name, err)
		}
	}
}

// Property: ANY recipe subset composes into valid flow parameters.
func TestApplySetAlwaysValidProperty(t *testing.T) {
	base := flow.DefaultParams()
	f := func(raw [N]bool) bool {
		p := ApplySet(base, Set(raw))
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
	// The all-selected set too.
	var all Set
	for i := range all {
		all[i] = true
	}
	if err := ApplySet(base, all).Validate(); err != nil {
		t.Errorf("all-40 set invalid: %v", err)
	}
}

func TestApplySetEmptyIsClampedBase(t *testing.T) {
	base := flow.DefaultParams()
	p := ApplySet(base, Set{})
	if p != base {
		t.Fatalf("empty set should return base params: %+v vs %+v", p, base)
	}
}

func TestSetStringRoundTrip(t *testing.T) {
	var s Set
	s[0], s[7], s[39] = true, true, true
	str := s.String()
	if len(str) != N {
		t.Fatalf("string length %d", len(str))
	}
	back, err := ParseSet(str)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatal("round trip mismatch")
	}
}

func TestParseSetErrors(t *testing.T) {
	if _, err := ParseSet("101"); err == nil {
		t.Fatal("expected length error")
	}
	bad := make([]byte, N)
	for i := range bad {
		bad[i] = 'x'
	}
	if _, err := ParseSet(string(bad)); err == nil {
		t.Fatal("expected character error")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	var s Set
	s[3], s[21] = true, true
	bits := s.Bits()
	if len(bits) != N || bits[3] != 1 || bits[4] != 0 {
		t.Fatalf("Bits wrong: %v", bits)
	}
	back, err := FromBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatal("FromBits mismatch")
	}
	if _, err := FromBits([]int{1, 0}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestCount(t *testing.T) {
	var s Set
	if s.Count() != 0 {
		t.Fatal("empty count")
	}
	s[1], s[2], s[39] = true, true, true
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
}

func TestCategoryString(t *testing.T) {
	if Intention.String() != "Design intention tradeoffs" {
		t.Fatal("category string wrong")
	}
	if GlobalRouting.String() != "Global routing" {
		t.Fatal("category string wrong")
	}
}

func TestConflictingRecipesStillValid(t *testing.T) {
	// Opposing recipes applied together must stay legal.
	pairs := [][2]string{
		{"cong_low_util", "cong_high_util"},
		{"cts_tight_skew", "cts_loose_skew"},
		{"groute_short_wires", "groute_free_detour"},
		{"timing_setup_focus", "timing_hold_focus"},
		{"intent_timing_max", "intent_power_max"},
	}
	base := flow.DefaultParams()
	for _, pair := range pairs {
		var s Set
		for _, name := range pair {
			r, ok := ByName(name)
			if !ok {
				t.Fatalf("missing recipe %q", name)
			}
			s[r.ID] = true
		}
		if err := ApplySet(base, s).Validate(); err != nil {
			t.Errorf("pair %v invalid: %v", pair, err)
		}
	}
}

// Property: Set → String → ParseSet is the identity for any bit pattern.
func TestSetStringRoundTripProperty(t *testing.T) {
	f := func(raw [N]bool) bool {
		s := Set(raw)
		back, err := ParseSet(s.String())
		return err == nil && back == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// Property: Bits/FromBits round-trips and Count equals the popcount.
func TestBitsRoundTripProperty(t *testing.T) {
	f := func(raw [N]bool) bool {
		s := Set(raw)
		bits := s.Bits()
		ones := 0
		for _, b := range bits {
			ones += b
		}
		if ones != s.Count() {
			return false
		}
		back, err := FromBits(bits)
		return err == nil && back == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}
