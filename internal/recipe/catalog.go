package recipe

import (
	"sync"

	"insightalign/internal/flow"
)

var (
	catalogOnce sync.Once
	catalog     []Recipe
)

// Catalog returns the 40-recipe catalog, built once. Recipe IDs are stable
// and equal to the slice index.
func Catalog() []Recipe {
	catalogOnce.Do(buildCatalog)
	return catalog
}

// ByName finds a recipe by name.
func ByName(name string) (Recipe, bool) {
	for _, r := range Catalog() {
		if r.Name == name {
			return r, true
		}
	}
	return Recipe{}, false
}

// ByCategory returns all recipes of a category, in ID order.
func ByCategory(c Category) []Recipe {
	var out []Recipe
	for _, r := range Catalog() {
		if r.Category == c {
			out = append(out, r)
		}
	}
	return out
}

func add(name string, cat Category, desc string, apply func(*flow.Params)) {
	catalog = append(catalog, Recipe{ID: len(catalog), Name: name, Category: cat, Description: desc, apply: apply})
}

func buildCatalog() {
	// ---- Design intention tradeoffs (8) — Table II row 1 ----
	add("intent_timing_max", Intention,
		"Maximize timing: full repair effort, timing-driven placement, no leakage recovery",
		func(p *flow.Params) {
			p.SetupFixWeight += 0.4
			p.UpsizeAggressiveness += 0.4
			p.TimingDrivenWeight += 0.5
			p.MaxOptPasses += 2
			p.LeakageRecoveryEffort -= 0.4
		})
	add("intent_power_max", Intention,
		"Minimize power: aggressive leakage recovery and clock gating, relaxed repair",
		func(p *flow.Params) {
			p.LeakageRecoveryEffort += 0.45
			p.RecoverySlackMarginPS -= 15
			p.ClockGatingEfficiency += 0.3
			p.UpsizeAggressiveness -= 0.25
		})
	add("intent_area_max", Intention,
		"Minimize area: high placement density, modest repair",
		func(p *flow.Params) {
			p.TargetUtil += 0.15
			p.SetupFixWeight -= 0.15
			p.UpsizeAggressiveness -= 0.15
		})
	add("intent_balanced_tp", Intention,
		"Balance timing and power: moderate repair with guarded recovery",
		func(p *flow.Params) {
			p.SetupFixWeight += 0.2
			p.LeakageRecoveryEffort += 0.2
			p.RecoverySlackMarginPS += 10
		})
	add("intent_power_relaxed_timing", Intention,
		"Spend positive slack on power: deep recovery with thin margins",
		func(p *flow.Params) {
			p.LeakageRecoveryEffort += 0.5
			p.RecoverySlackMarginPS -= 22
			p.SetupFixWeight -= 0.1
		})
	add("intent_timing_guardband", Intention,
		"Protect timing: wide recovery margins, strong hold fixing",
		func(p *flow.Params) {
			p.RecoverySlackMarginPS += 35
			p.HoldFixWeight += 0.3
			p.SetupFixWeight += 0.15
		})
	add("intent_low_dynamic", Intention,
		"Cut dynamic power: clock gating plus low-activity-friendly density",
		func(p *flow.Params) {
			p.ClockGatingEfficiency += 0.4
			p.TargetUtil -= 0.05
		})
	add("intent_rush_mode", Intention,
		"Fast turnaround: minimum effort everywhere (baseline-quality QoR)",
		func(p *flow.Params) {
			p.MaxOptPasses -= 1
			p.RouteIterations -= 1
			p.SetupFixWeight -= 0.2
			p.LeakageRecoveryEffort -= 0.2
			p.PlaceCongestionEff -= 0.3
		})

	// ---- Timing (10) — Table II row 2 ----
	add("timing_setup_focus", Timing,
		"Weight setup fixing heavily over hold fixing",
		func(p *flow.Params) {
			p.SetupFixWeight += 0.35
			p.HoldFixWeight -= 0.2
		})
	add("timing_hold_focus", Timing,
		"Weight early hold fixing heavily over setup fixing",
		func(p *flow.Params) {
			p.HoldFixWeight += 0.45
			p.SetupFixWeight -= 0.1
		})
	add("timing_upsize_aggressive", Timing,
		"Allow LVT swaps and maximal upsizing on critical paths",
		func(p *flow.Params) {
			p.UpsizeAggressiveness += 0.5
			p.SetupFixWeight += 0.2
		})
	add("timing_low_perturb", Timing,
		"Suppress placement perturbation to stabilize timing closure",
		func(p *flow.Params) {
			p.PlacementPerturb -= 0.02
			p.TimingDrivenWeight += 0.2
		})
	add("timing_explore_perturb", Timing,
		"Perturb placement to escape local timing minima",
		func(p *flow.Params) {
			p.PlacementPerturb += 0.10
			p.PlacementSteps += 1
		})
	add("timing_deep_opt", Timing,
		"Extra timing optimization passes",
		func(p *flow.Params) {
			p.MaxOptPasses += 3
			p.SetupFixWeight += 0.1
		})
	add("timing_driven_place", Timing,
		"Strongly timing-driven placement attraction",
		func(p *flow.Params) {
			p.TimingDrivenWeight += 0.6
		})
	add("timing_wire_focus", Timing,
		"Shorten critical wires: tight placement plus route effort",
		func(p *flow.Params) {
			p.TimingDrivenWeight += 0.3
			p.RouteIterations += 1
			p.TargetUtil += 0.06
		})
	add("timing_hold_guard", Timing,
		"Guarantee hold closure: fix every hold violation regardless of power",
		func(p *flow.Params) {
			p.HoldFixWeight += 0.6
		})
	add("timing_relax_repair", Timing,
		"Trust the natural slack: minimal repair (saves power on easy designs)",
		func(p *flow.Params) {
			p.SetupFixWeight -= 0.35
			p.UpsizeAggressiveness -= 0.25
		})

	// ---- Clock tree (8) — Table II row 3 ----
	add("cts_tight_skew", ClockTree,
		"Balance the clock tree to a tight skew target",
		func(p *flow.Params) {
			p.CTSSkewTargetPS -= 9
		})
	add("cts_loose_skew", ClockTree,
		"Relax the skew target to save clock-tree power",
		func(p *flow.Params) {
			p.CTSSkewTargetPS += 25
		})
	add("cts_useful_skew", ClockTree,
		"Leave natural skew unbalanced (useful-skew style, saves padding)",
		func(p *flow.Params) {
			p.UsefulSkew = true
		})
	add("cts_big_buffers", ClockTree,
		"Drive the clock tree with strength-4 buffers (lower latency, more power)",
		func(p *flow.Params) {
			p.CTSBufferDrive = 4
			p.CTSLatencyEffort += 0.2
		})
	add("cts_small_buffers", ClockTree,
		"Drive the clock tree with unit buffers (low power, higher latency)",
		func(p *flow.Params) {
			p.CTSBufferDrive = 1
			p.CTSLatencyEffort -= 0.2
		})
	add("cts_low_fanout", ClockTree,
		"Deep tree with few sinks per buffer (balanced, buffer-hungry)",
		func(p *flow.Params) {
			p.CTSMaxFanout -= 6
		})
	add("cts_high_fanout", ClockTree,
		"Shallow tree with many sinks per buffer (cheap, skew-prone)",
		func(p *flow.Params) {
			p.CTSMaxFanout += 16
		})
	add("cts_latency_min", ClockTree,
		"Minimize insertion delay at power cost",
		func(p *flow.Params) {
			p.CTSLatencyEffort += 0.5
		})

	// ---- Routing congestion (8) — Table II row 4 ----
	add("cong_low_util", RoutingCongestion,
		"Lower placement density to relieve routing congestion",
		func(p *flow.Params) {
			p.TargetUtil -= 0.12
		})
	add("cong_high_util", RoutingCongestion,
		"Raise placement density (shorter wires, congestion risk)",
		func(p *flow.Params) {
			p.TargetUtil += 0.12
		})
	add("cong_strong_spread", RoutingCongestion,
		"Spread overfull placement bins hard",
		func(p *flow.Params) {
			p.SpreadStrength += 0.5
			p.PlaceCongestionEff += 0.3
		})
	add("cong_place_effort", RoutingCongestion,
		"Extra congestion-driven placement passes",
		func(p *flow.Params) {
			p.PlaceCongestionEff += 0.5
			p.PlacementSteps += 1
		})
	add("cong_route_weight", RoutingCongestion,
		"Make the router strongly congestion-averse",
		func(p *flow.Params) {
			p.CongestionWeight += 2.0
		})
	add("cong_headroom", RoutingCongestion,
		"Reserve routing track headroom (fewer DRCs, longer wires)",
		func(p *flow.Params) {
			p.TrackUtil -= 0.2
			p.CongestionWeight += 0.5
		})
	add("cong_pack_tracks", RoutingCongestion,
		"Use every routing track (risky but short wires)",
		func(p *flow.Params) {
			p.TrackUtil += 0.15
		})
	add("cong_balanced", RoutingCongestion,
		"Moderate congestion treatment across placement and routing",
		func(p *flow.Params) {
			p.PlaceCongestionEff += 0.2
			p.CongestionWeight += 0.8
			p.TargetUtil -= 0.04
		})

	// ---- Global routing (6) — Table II row 5 ----
	add("groute_more_iter", GlobalRouting,
		"More rip-up-and-reroute iterations",
		func(p *flow.Params) {
			p.RouteIterations += 3
		})
	add("groute_wide_detour", GlobalRouting,
		"Search a wide window for detours",
		func(p *flow.Params) {
			p.RouteExpansion += 3
			p.DetourPenalty -= 0.2
		})
	add("groute_short_wires", GlobalRouting,
		"Penalize detours strongly (short wires, congestion risk)",
		func(p *flow.Params) {
			p.DetourPenalty += 1.0
		})
	add("groute_free_detour", GlobalRouting,
		"Allow cheap detours to kill hotspots",
		func(p *flow.Params) {
			p.DetourPenalty -= 0.35
			p.RouteIterations += 1
		})
	add("groute_max_effort", GlobalRouting,
		"Maximum global routing effort on every axis",
		func(p *flow.Params) {
			p.RouteIterations += 4
			p.RouteExpansion += 2
			p.CongestionWeight += 1.0
		})
	add("groute_fast", GlobalRouting,
		"Single-pass routing (fast, rough)",
		func(p *flow.Params) {
			p.RouteIterations -= 2
			p.RouteExpansion -= 1
		})
}
