// Package obs is the process-wide observability layer: a dependency-free
// metrics registry with Prometheus text exposition (counters, gauges,
// fixed-bucket histograms), lightweight span tracing propagated through
// context.Context with a bounded ring of recent traces, a crash-safe JSONL
// run journal, and an http mux bundling /metrics, /debug/traces, and
// net/http/pprof.
//
// Every subsystem — the HTTP serving edge, the beam-search decoder, the
// data-parallel training engine, the online tuner — registers into one
// shared namespace (Default()), so a single /metrics scrape shows the
// whole pipeline and a single trace ID follows a request from the HTTP
// handler through the admission queue into the decoder session.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Registry is a concurrency-safe metrics registry. Metric families are
// registered get-or-create: registering the same name twice with matching
// kind and label names returns the same family, so independently
// constructed subsystems (two servers in one test binary, a trainer next
// to a serving edge) share series instead of colliding. Kind or label-set
// mismatches panic: they are programming errors, not runtime conditions.
type Registry struct {
	mu       sync.RWMutex
	start    time.Time
	families map[string]*family
}

// metric family kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric with a fixed label schema and a set of
// labeled series.
type family struct {
	name   string
	help   string
	kind   string
	labels []string
	bounds []float64 // histogram upper bounds (implicit +Inf tail)

	mu     sync.Mutex
	series map[string]*series

	// Callback gauges, sampled at scrape time. gaugeFn is an unlabeled
	// value; infoFn produces the value of the single label infoLabel on a
	// constant-1 info gauge (the model_info pattern). Re-registration
	// replaces the callback (last writer wins), so a restarted subsystem
	// re-binds its live gauge instead of erroring.
	gaugeFn   func() float64
	infoFn    func() string
	infoLabel string
}

// series is one labeled time series of a family.
type series struct {
	labelVals []string
	val       float64  // counter / gauge
	counts    []uint64 // histogram buckets, len(bounds)+1
	sum       float64
	count     uint64
	// exemplars holds, per histogram bucket (len(bounds)+1, the +Inf
	// tail last), the most recent (value, trace ID) pair observed into
	// that bucket via ObserveEx. Emitted OpenMetrics-style after the
	// bucket's sample line so a scrape links straight to /debug/traces.
	exemplars []exemplar
}

// exemplar is one bucket's most recent traced observation.
type exemplar struct {
	val     float64
	traceID string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), families: map[string]*family{}}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry every subsystem shares. It
// carries an insightalign_uptime_seconds gauge from first use.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry()
		defaultReg.GaugeFunc("insightalign_uptime_seconds",
			"Time since the process-wide metrics registry was created.",
			func() float64 { return time.Since(defaultReg.start).Seconds() })
	})
	return defaultReg
}

// register resolves or creates a family, enforcing schema consistency.
func (r *Registry) register(name, help, kind string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, bounds: bounds, series: map[string]*series{}}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing labeled metric family.
type Counter struct{ f *family }

// Counter registers (or resolves) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return &Counter{f: r.register(name, help, kindCounter, labels, nil)}
}

// Inc adds 1 to the series identified by labelVals.
func (c *Counter) Inc(labelVals ...string) { c.Add(1, labelVals...) }

// Add adds v (which must be >= 0) to the series identified by labelVals.
func (c *Counter) Add(v float64, labelVals ...string) {
	if v < 0 {
		panic("obs: counter decrease")
	}
	c.f.mu.Lock()
	c.f.get(labelVals).val += v
	c.f.mu.Unlock()
}

// Gauge is a settable labeled metric family.
type Gauge struct{ f *family }

// Gauge registers (or resolves) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return &Gauge{f: r.register(name, help, kindGauge, labels, nil)}
}

// Set stores v in the series identified by labelVals.
func (g *Gauge) Set(v float64, labelVals ...string) {
	g.f.mu.Lock()
	g.f.get(labelVals).val = v
	g.f.mu.Unlock()
}

// Add adjusts the series by v (negative to decrease).
func (g *Gauge) Add(v float64, labelVals ...string) {
	g.f.mu.Lock()
	g.f.get(labelVals).val += v
	g.f.mu.Unlock()
}

// SetMax raises the series to v if v exceeds its current value — the
// high-watermark pattern (largest batch seen, peak queue depth).
func (g *Gauge) SetMax(v float64, labelVals ...string) {
	g.f.mu.Lock()
	if s := g.f.get(labelVals); v > s.val {
		s.val = v
	}
	g.f.mu.Unlock()
}

// Value reads the series' current value (0 if never written).
func (g *Gauge) Value(labelVals ...string) float64 {
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	return g.f.get(labelVals).val
}

// GaugeFunc registers an unlabeled gauge whose value fn produces at scrape
// time. Re-registering replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	f.gaugeFn = fn
	f.mu.Unlock()
}

// InfoFunc registers a constant-1 gauge whose single label value fn
// produces at scrape time — the `thing_info{version="..."} 1` idiom.
// Re-registering replaces the callback.
func (r *Registry) InfoFunc(name, help, label string, fn func() string) {
	f := r.register(name, help, kindGauge, []string{label}, nil)
	f.mu.Lock()
	f.infoFn = fn
	f.infoLabel = label
	f.mu.Unlock()
}

// Histogram is a labeled fixed-bucket cumulative histogram family.
type Histogram struct{ f *family }

// Histogram registers (or resolves) a histogram family with the given
// upper bounds (the +Inf tail is implicit; bounds must be sorted
// ascending).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending", name))
		}
	}
	return &Histogram{f: r.register(name, help, kindHistogram, labels, append([]float64(nil), bounds...))}
}

// Observe records one value in the series identified by labelVals.
func (h *Histogram) Observe(v float64, labelVals ...string) {
	h.ObserveEx(v, "", labelVals...)
}

// ObserveEx records one value and, when traceID is non-empty, retains
// (v, traceID) as the landing bucket's exemplar — the most recent traced
// observation per bucket, emitted OpenMetrics-style on scrape
// (`... # {trace_id="..."} v`) so a hot bucket links to the trace that
// fed it.
func (h *Histogram) ObserveEx(v float64, traceID string, labelVals ...string) {
	h.f.mu.Lock()
	s := h.f.get(labelVals)
	if s.counts == nil {
		s.counts = make([]uint64, len(h.f.bounds)+1)
	}
	b := sort.SearchFloat64s(h.f.bounds, v)
	s.counts[b]++
	s.sum += v
	s.count++
	if traceID != "" {
		if s.exemplars == nil {
			s.exemplars = make([]exemplar, len(h.f.bounds)+1)
		}
		s.exemplars[b] = exemplar{val: v, traceID: traceID}
	}
	h.f.mu.Unlock()
}

// Count returns the series' total observation count.
func (h *Histogram) Count(labelVals ...string) uint64 {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return h.f.get(labelVals).count
}

// prune removes every series whose label values satisfy match, returning
// how many were dropped. It is how bounded-cardinality labels stay
// bounded: when the serve tier's model-version LRU evicts a version, the
// per-version series are deleted instead of lingering forever.
func (f *family) prune(match func(labelVals []string) bool) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for k, s := range f.series {
		if match(s.labelVals) {
			delete(f.series, k)
			n++
		}
	}
	return n
}

// Prune removes series whose label values satisfy match; returns the
// number of series dropped.
func (c *Counter) Prune(match func(labelVals []string) bool) int { return c.f.prune(match) }

// Prune removes series whose label values satisfy match; returns the
// number of series dropped.
func (g *Gauge) Prune(match func(labelVals []string) bool) int { return g.f.prune(match) }

// Prune removes series whose label values satisfy match; returns the
// number of series dropped.
func (h *Histogram) Prune(match func(labelVals []string) bool) int { return h.f.prune(match) }

// get resolves a series by label values; the caller holds f.mu.
func (f *family) get(labelVals []string) *series {
	if len(labelVals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s got %d label values for labels %v", f.name, len(labelVals), f.labels))
	}
	key := strings.Join(labelVals, "\x00")
	s, ok := f.series[key]
	if !ok {
		s = &series{labelVals: append([]string(nil), labelVals...)}
		f.series[key] = s
	}
	return s
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

// WriteExposition renders the registry in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label values,
// label values escaped per the spec (backslash, double-quote, newline),
// histograms with an explicit +Inf bucket.
func (r *Registry) WriteExposition(w io.Writer) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.write(w)
	}
}

// Exposition returns the rendered metrics page.
func (r *Registry) Exposition() string {
	var b strings.Builder
	r.WriteExposition(&b)
	return b.String()
}

// Handler serves the exposition over HTTP (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteExposition(w)
	})
}

func (f *family) write(w io.Writer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	if f.gaugeFn != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.gaugeFn()))
		return
	}
	if f.infoFn != nil {
		fmt.Fprintf(w, "%s{%s=\"%s\"} 1\n", f.name, f.infoLabel, escapeLabel(f.infoFn()))
		return
	}
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := f.series[k]
		if f.kind == kindHistogram {
			f.writeHistogramSeries(w, s)
			continue
		}
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.labelVals, "", ""), formatValue(s.val))
	}
}

func (f *family) writeHistogramSeries(w io.Writer, s *series) {
	cum := uint64(0)
	for i, bound := range f.bounds {
		if s.counts != nil {
			cum += s.counts[i]
		}
		fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name,
			labelString(f.labels, s.labelVals, "le", strconv.FormatFloat(bound, 'g', -1, 64)), cum,
			s.exemplarSuffix(i))
	}
	if s.counts != nil {
		cum += s.counts[len(f.bounds)]
	}
	// The spec requires the +Inf bucket explicitly; it must equal _count.
	fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, labelString(f.labels, s.labelVals, "le", "+Inf"), cum,
		s.exemplarSuffix(len(f.bounds)))
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labelVals, "", ""), formatValue(s.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.labelVals, "", ""), s.count)
}

// exemplarSuffix renders bucket i's exemplar in the OpenMetrics form
// ` # {trace_id="..."} v`, or "" when the bucket has none. Prometheus'
// 0.0.4 text parser treats the suffix as a comment-free extension the
// OpenMetrics format standardized; our own scrape parser (the fleet
// roll-up and the conformance test) strips it before value parsing.
func (s *series) exemplarSuffix(i int) string {
	if s.exemplars == nil || i >= len(s.exemplars) || s.exemplars[i].traceID == "" {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s", escapeLabel(s.exemplars[i].traceID), formatValue(s.exemplars[i].val))
}

// labelString renders {a="x",b="y"[,extra="v"]}, or "" when there are no
// labels at all. extraName is the histogram's le label.
func labelString(names, vals []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text-format spec: backslash,
// double-quote, and line feed.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP text per the spec: backslash and line feed.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
