package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"insightalign/internal/atomicfile"
)

// Continuous profiling. A Profiler periodically captures a short CPU
// profile and a heap snapshot into a bounded on-disk ring
// (cpu-<seq>.pprof / heap-<seq>.pprof under Dir), each written through
// internal/atomicfile so a crash mid-capture never leaves a torn profile
// where `go tool pprof` could choke on it. The ring keeps the newest
// Keep samples per kind and deletes older ones, so a long-lived server
// holds a rolling window of its own recent behavior — when a latency
// regression pages, the profile covering the bad minutes is already on
// disk. /debug/profiles serves the index and the raw profile bytes.

// ProfilerConfig parameterizes StartProfiler; the zero value of every
// field gets a sane default except Dir, which is required.
type ProfilerConfig struct {
	// Dir is the on-disk ring directory (created if missing).
	Dir string
	// Interval is the capture period (default 60s).
	Interval time.Duration
	// CPUDuration is how long each CPU profile samples (default 5s,
	// clamped below Interval).
	CPUDuration time.Duration
	// Keep bounds the ring: newest Keep profiles per kind survive
	// (default 8).
	Keep int
}

// Profiler is a running background sampler over a bounded profile ring.
type Profiler struct {
	cfg  ProfilerConfig
	seq  uint64
	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// profileName matches ring entries: kind-seq.pprof. Anchored so the
// HTTP file parameter can be validated against path traversal.
var profileName = regexp.MustCompile(`^(cpu|heap)-(\d+)\.pprof$`)

// StartProfiler creates the ring directory, resumes the sequence counter
// from any profiles already on disk, and starts the capture loop.
// Callers must Close it.
func StartProfiler(cfg ProfilerConfig) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: profiler needs a directory")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 60 * time.Second
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 5 * time.Second
	}
	if cfg.CPUDuration >= cfg.Interval {
		cfg.CPUDuration = cfg.Interval / 2
	}
	if cfg.Keep < 1 {
		cfg.Keep = 8
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profiler dir: %w", err)
	}
	p := &Profiler{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	// Resume past the highest sequence already on disk so a restart keeps
	// appending to the same ring instead of overwriting it.
	for _, e := range p.list() {
		if e.Seq >= p.seq {
			p.seq = e.Seq + 1
		}
	}
	go p.loop()
	return p, nil
}

// Close stops the capture loop and waits for an in-flight capture to
// finish. Safe on a nil receiver (profiling disabled).
func (p *Profiler) Close() {
	if p == nil {
		return
	}
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
}

func (p *Profiler) loop() {
	defer close(p.done)
	ticker := time.NewTicker(p.cfg.Interval)
	defer ticker.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-p.stop
		cancel()
	}()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			// Best-effort: a failed capture (disk full, a competing
			// CPU profile via /debug/pprof/profile) skips the cycle.
			_ = p.CaptureNow(ctx)
		}
	}
}

// CaptureNow runs one capture cycle synchronously — a CPU profile of
// CPUDuration plus a heap snapshot — writing both into the ring and
// pruning past Keep. Exposed for tests and operator tooling.
func (p *Profiler) CaptureNow(ctx context.Context) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	seq := p.seq
	p.seq++
	p.mu.Unlock()

	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		return fmt.Errorf("obs: cpu profile: %w", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(p.cfg.CPUDuration):
	}
	pprof.StopCPUProfile()
	if err := p.writeProfile("cpu", seq, cpu.Bytes()); err != nil {
		return err
	}

	var heap bytes.Buffer
	runtime.GC() // up-to-date allocation stats, matching pprof's debug handler
	if err := pprof.Lookup("heap").WriteTo(&heap, 0); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	if err := p.writeProfile("heap", seq, heap.Bytes()); err != nil {
		return err
	}
	p.prune()
	return ctx.Err()
}

func (p *Profiler) writeProfile(kind string, seq uint64, b []byte) error {
	path := filepath.Join(p.cfg.Dir, fmt.Sprintf("%s-%d.pprof", kind, seq))
	return atomicfile.Write(path, func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	})
}

// prune deletes ring entries older than the newest Keep per kind.
func (p *Profiler) prune() {
	byKind := map[string][]ProfileInfo{}
	for _, e := range p.list() {
		byKind[e.Kind] = append(byKind[e.Kind], e)
	}
	for _, entries := range byKind {
		if over := len(entries) - p.cfg.Keep; over > 0 {
			for _, e := range entries[:over] { // list() sorts oldest first
				os.Remove(filepath.Join(p.cfg.Dir, e.Name))
			}
		}
	}
}

// ProfileInfo is one ring entry in the /debug/profiles index.
type ProfileInfo struct {
	Name  string    `json:"name"` // cpu-12.pprof
	Kind  string    `json:"kind"` // cpu | heap
	Seq   uint64    `json:"seq"`
	Bytes int64     `json:"bytes"`
	MTime time.Time `json:"mtime"`
}

// list returns the ring's current entries, oldest first (by seq, then
// kind for stability).
func (p *Profiler) list() []ProfileInfo {
	des, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return nil
	}
	var out []ProfileInfo
	for _, de := range des {
		m := profileName.FindStringSubmatch(de.Name())
		if m == nil {
			continue
		}
		seq, _ := strconv.ParseUint(m[2], 10, 64)
		info := ProfileInfo{Name: de.Name(), Kind: m[1], Seq: seq}
		if fi, err := de.Info(); err == nil {
			info.Bytes = fi.Size()
			info.MTime = fi.ModTime().UTC()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Index returns the ring's entries, newest first — the /debug/profiles
// JSON body.
func (p *Profiler) Index() []ProfileInfo {
	if p == nil {
		return nil
	}
	asc := p.list()
	out := make([]ProfileInfo, 0, len(asc))
	for i := len(asc) - 1; i >= 0; i-- {
		out = append(out, asc[i])
	}
	return out
}

// Handler serves the profile ring: GET /debug/profiles lists the index
// as JSON, GET /debug/profiles?file=cpu-12.pprof streams that profile
// (inspect with `go tool pprof <url>`). File names are validated against
// the ring pattern, so the parameter cannot escape the ring directory.
func (p *Profiler) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if name := r.URL.Query().Get("file"); name != "" {
			if !profileName.MatchString(name) {
				http.Error(w, "unknown profile name", http.StatusBadRequest)
				return
			}
			b, err := os.ReadFile(filepath.Join(p.cfg.Dir, name))
			if err != nil {
				http.Error(w, "profile not in the ring (rotated out?)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", "attachment; filename="+name)
			w.Write(b)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"dir":      p.cfg.Dir,
			"keep":     p.cfg.Keep,
			"interval": p.cfg.Interval.String(),
			"profiles": p.Index(),
		})
	})
}
