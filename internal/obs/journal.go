package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"insightalign/internal/atomicfile"
)

// Journal is a machine-readable JSONL run record: one JSON object per
// line, each stamped with a sequence number, wall-clock time, and an event
// name. Training runs journal per-epoch EpochStats, the online tuner
// journals each iteration's chosen recipe sets and QoR, and checkpoint
// save/reload events mark where a trajectory was persisted — enough to
// reconstruct a Fig. 6-style trajectory from the file alone.
//
// Durability: the active segment is kept in memory and rewritten through
// internal/atomicfile on every Record, so a crash never leaves a torn
// line — readers see either the previous complete segment or the new one.
// When the active segment exceeds MaxBytes it rotates: the segment is
// atomically written to <path>.1 (replacing any previous rotation) and the
// active file restarts empty. ReadJournalFile reassembles <path>.1 +
// <path> transparently.
type Journal struct {
	mu       sync.Mutex
	path     string
	buf      []byte
	seq      uint64
	maxBytes int
	now      func() time.Time // test hook
}

// defaultJournalMaxBytes bounds the active segment (and therefore the
// per-Record rewrite cost) before rotation.
const defaultJournalMaxBytes = 1 << 20

// Entry is one journal line.
type Entry struct {
	Seq   uint64          `json:"seq"`
	Time  time.Time       `json:"ts"`
	Event string          `json:"event"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// NewJournal opens a journal at path, truncating any previous run's file
// (and its rotation) so the journal describes exactly one run.
func NewJournal(path string) (*Journal, error) {
	j := &Journal{path: path, maxBytes: defaultJournalMaxBytes, now: time.Now}
	os.Remove(path + ".1")
	if err := atomicfile.Write(path, func(io.Writer) error { return nil }); err != nil {
		return nil, fmt.Errorf("obs: create journal: %w", err)
	}
	return j, nil
}

// OpenJournal opens a journal at path, appending to any previous run's
// entries instead of truncating them: the existing active segment is kept
// (and kept being rewritten on Record) and sequence numbers continue past
// the highest one on disk, rotated segment included. This is the durable
// variant for state machines that must survive restarts — the checkpoint
// lifecycle journal replays these entries to restore a shadow or canary
// that was in flight when the process died. A missing file behaves like
// NewJournal.
func OpenJournal(path string) (*Journal, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewJournal(path)
	}
	if err != nil {
		return nil, fmt.Errorf("obs: open journal: %w", err)
	}
	entries, err := ReadJournalFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: open journal: %w", err)
	}
	j := &Journal{path: path, buf: raw, maxBytes: defaultJournalMaxBytes, now: time.Now}
	for _, e := range entries {
		if e.Seq > j.seq {
			j.seq = e.Seq
		}
	}
	return j, nil
}

// Path returns the journal's active file path.
func (j *Journal) Path() string { return j.path }

// Record appends one event. data is marshalled as the entry's "data"
// field; a nil data writes the event line alone. The write is crash-safe:
// the full active segment is atomically replaced.
func (j *Journal) Record(event string, data any) error {
	if j == nil {
		return nil // a nil journal is a disabled journal; callers need no guard
	}
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			return fmt.Errorf("obs: journal %s: %w", event, err)
		}
		raw = b
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	line, err := json.Marshal(Entry{Seq: j.seq, Time: j.now().UTC(), Event: event, Data: raw})
	if err != nil {
		return err
	}
	if len(j.buf)+len(line)+1 > j.maxBytes && len(j.buf) > 0 {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	j.buf = append(j.buf, line...)
	j.buf = append(j.buf, '\n')
	return atomicfile.Write(j.path, func(w io.Writer) error {
		_, err := w.Write(j.buf)
		return err
	})
}

// rotateLocked moves the active segment to <path>.1 and restarts empty.
func (j *Journal) rotateLocked() error {
	if err := atomicfile.Write(j.path+".1", func(w io.Writer) error {
		_, err := w.Write(j.buf)
		return err
	}); err != nil {
		return fmt.Errorf("obs: rotate journal: %w", err)
	}
	j.buf = j.buf[:0]
	return nil
}

// ReadJournal parses JSONL entries from r, skipping blank lines.
func ReadJournal(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return out, fmt.Errorf("obs: journal line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// journalReadGapHook, when non-nil, runs between reading the rotated
// segment and the active file. Test seam: it lets journal_test.go force a
// rotation into exactly the reassembly window that used to drop or
// duplicate the boundary entry.
var journalReadGapHook func()

// readJournalSegments reads <path>.1 (if present) then <path>, returning
// the concatenated entries of whatever both files held at open time.
func readJournalSegments(path string) ([]Entry, error) {
	var out []Entry
	for _, p := range []string{path + ".1", path} {
		if p == path && journalReadGapHook != nil {
			journalReadGapHook()
		}
		f, err := os.Open(p)
		if err != nil {
			if os.IsNotExist(err) && p != path {
				continue
			}
			return nil, err
		}
		es, rerr := ReadJournal(f)
		f.Close()
		if rerr != nil {
			return nil, rerr
		}
		out = append(out, es...)
	}
	return out, nil
}

// ReadJournalFile reads a journal written by Journal, reassembling the
// rotated segment (<path>.1, if present) before the active one,
// exactly-once at the rotation boundary.
//
// Rotation is two atomic writes (segment → <path>.1, then the shrunken
// active file), so a reader racing it can observe the boundary entries in
// both files (duplicate) or, if the rotation lands between its two opens,
// in neither (the segment it read from <path>.1 was already one rotation
// stale — a drop). Entries carry contiguous sequence numbers, which makes
// both cases detectable: duplicates are deduped by seq (first occurrence
// wins; a given run never reuses a seq), and a gap in the deduped
// sequence means a rotation raced the two opens — re-read, folding every
// attempt's entries into one union so a segment seen on an earlier
// attempt is never lost to a later rotation. Gaps are bounded by the
// journal keeping a single rotation: three attempts suffice unless
// rotations outpace reads indefinitely, in which case the best-effort
// union is returned (still duplicate-free and sorted, possibly missing a
// segment that rotated away — exactly what a crashed run would have kept).
func ReadJournalFile(path string) ([]Entry, error) {
	seen := make(map[uint64]Entry)
	const attempts = 3
	for a := 0; a < attempts; a++ {
		es, err := readJournalSegments(path)
		if err != nil {
			return nil, err
		}
		for _, e := range es {
			if _, dup := seen[e.Seq]; !dup {
				seen[e.Seq] = e
			}
		}
		out := make([]Entry, 0, len(seen))
		for _, e := range seen {
			out = append(out, e)
		}
		sort.Slice(out, func(i, k int) bool { return out[i].Seq < out[k].Seq })
		contiguous := true
		for i := 1; i < len(out); i++ {
			if out[i].Seq != out[i-1].Seq+1 {
				contiguous = false
				break
			}
		}
		if contiguous || a == attempts-1 {
			return out, nil
		}
	}
	return nil, nil // unreachable: the last attempt always returns
}
