package obs

import (
	"strings"
	"testing"
)

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ex_seconds", "Latency.", []float64{0.1, 1}, "route")
	h.ObserveEx(0.05, "00000000000000aa", "/v1/recommend")
	h.ObserveEx(0.5, "00000000000000bb", "/v1/recommend")
	h.ObserveEx(7, "00000000000000cc", "/v1/recommend")
	// A later observation into the same bucket replaces its exemplar.
	h.ObserveEx(0.06, "00000000000000dd", "/v1/recommend")
	// Untraced observations count but leave the exemplar alone.
	h.Observe(0.07, "/v1/recommend")

	out := r.Exposition()
	for _, want := range []string{
		`ex_seconds_bucket{route="/v1/recommend",le="0.1"} 3 # {trace_id="00000000000000dd"} 0.06`,
		`ex_seconds_bucket{route="/v1/recommend",le="1"} 4 # {trace_id="00000000000000bb"} 0.5`,
		`ex_seconds_bucket{route="/v1/recommend",le="+Inf"} 5 # {trace_id="00000000000000cc"} 7`,
		`ex_seconds_count{route="/v1/recommend"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// The page with exemplars must still pass the strict format parser.
	if err := parseExposition(out); err != nil {
		t.Fatalf("exemplar page fails conformance: %v\n---\n%s", err, out)
	}
}

func TestHistogramExemplarUntracedSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("plain_seconds", "Latency.", []float64{1})
	h.Observe(0.5)
	out := r.Exposition()
	if strings.Contains(out, " # {") {
		t.Fatalf("untraced series emitted an exemplar:\n%s", out)
	}
	if err := parseExposition(out); err != nil {
		t.Fatalf("conformance: %v", err)
	}
}

func TestPruneSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pv_seconds", "Per-version latency.", []float64{1}, "route", "model_version")
	c := r.Counter("pv_total", "Per-version totals.", "model_version")
	for _, v := range []string{"v1", "v2", "v3"} {
		h.Observe(0.5, "/v1/recommend", v)
		c.Inc(v)
	}
	match := func(vals []string) bool { return vals[len(vals)-1] == "v2" }
	if n := h.Prune(match); n != 1 {
		t.Fatalf("histogram Prune removed %d series, want 1", n)
	}
	if n := c.Prune(match); n != 1 {
		t.Fatalf("counter Prune removed %d series, want 1", n)
	}
	out := r.Exposition()
	if strings.Contains(out, `model_version="v2"`) {
		t.Fatalf("pruned version still exposed:\n%s", out)
	}
	for _, keep := range []string{`model_version="v1"`, `model_version="v3"`} {
		if !strings.Contains(out, keep) {
			t.Fatalf("prune dropped survivor %s:\n%s", keep, out)
		}
	}
	// A fresh observation for the pruned version recreates the series.
	c.Inc("v2")
	if !strings.Contains(r.Exposition(), `pv_total{model_version="v2"} 1`) {
		t.Fatal("pruned series did not restart from zero")
	}
}
