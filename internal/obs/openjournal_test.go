package obs

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestOpenJournalContinuesSequence: reopening a journal in append mode
// keeps every prior entry and continues the sequence numbering — the
// durability contract the checkpoint lifecycle's crash resume relies on.
func TestOpenJournalContinuesSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j1, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j1.Record("step", map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Record("step", map[string]int{"i": 3}); err != nil {
		t.Fatal(err)
	}

	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries after reopen = %d, want 4", len(entries))
	}
	for k, e := range entries {
		if e.Seq != uint64(k+1) {
			t.Fatalf("entry %d has seq %d, want %d (sequence must continue across reopen)", k, e.Seq, k+1)
		}
		var data struct {
			I int `json:"i"`
		}
		if err := json.Unmarshal(e.Data, &data); err != nil {
			t.Fatal(err)
		}
		if data.I != k {
			t.Fatalf("entry %d payload i=%d, want %d (pre-reopen entries must survive)", k, data.I, k)
		}
	}
}

// TestOpenJournalMissingFile: opening a path that does not exist behaves
// like NewJournal — a fresh journal starting at seq 1.
func TestOpenJournalMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("first", nil); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Seq != 1 || entries[0].Event != "first" {
		t.Fatalf("fresh OpenJournal entries %+v", entries)
	}
}

// TestNewJournalTruncatesExisting: the contrast case — NewJournal on an
// existing path describes exactly one run, wiping the previous one. A
// state machine that must survive restarts therefore MUST use OpenJournal.
func TestNewJournalTruncatesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j1, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Record("old", nil); err != nil {
		t.Fatal(err)
	}
	j2, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Record("new", nil); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Event != "new" || entries[0].Seq != 1 {
		t.Fatalf("NewJournal should truncate: %+v", entries)
	}
}
