package obs

import "time"

// Quantile helpers shared by every percentile consumer in the stack: the
// load generator's latency report, the fleet router's p95 hedging
// trigger, and the benchmark reporting. All of them want the same thing —
// the nearest-rank quantile of an already-sorted sample — and each had
// grown a private copy with the same off-by-one hazards at tiny sample
// sizes, so the arithmetic lives here exactly once.
//
// Nearest-rank: for n samples the q-quantile is element
// ceil(q*n) - 1 ≈ round(q*n) - 1 (0-indexed), clamped into [0, n-1] so
// n = 1 returns the only sample for every q and q = 0 returns the
// minimum. An empty sample returns the zero value; callers that need to
// distinguish "no data" from "zero latency" check len before calling.

// quantileIndex returns the clamped nearest-rank index for n samples.
func quantileIndex(n int, q float64) int {
	i := int(q*float64(n)+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Quantile returns the nearest-rank q-quantile of sorted (ascending)
// values, 0 when the sample is empty.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[quantileIndex(len(sorted), q)]
}

// QuantileDur is Quantile over sorted durations.
func QuantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[quantileIndex(len(sorted), q)]
}
