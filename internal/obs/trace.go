package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing. A trace is a tree of spans sharing one monotonically
// assigned trace ID (rendered as 16 hex digits, e.g. "000000000000002a");
// span IDs are monotonic within the process. StartSpan reads the parent
// span from the context, so a trace crosses goroutine and subsystem
// boundaries wherever the context is propagated: HTTP handler → admission
// queue → micro-batch → decoder session, or train epoch → minibatch →
// worker chunk. Completed traces land in a bounded ring served at
// /debug/traces.

// maxSpansPerTrace bounds one trace's span list; further spans are
// counted, not stored, so a pathological epoch cannot hold the heap.
const maxSpansPerTrace = 512

// defaultTraceRing is how many completed traces the ring retains.
const defaultTraceRing = 128

// maxEvictedIDs bounds the tracer's memory of trace IDs that have rotated
// out of the ring. It exists so an exemplar link on /metrics that
// outlives the ring fails legibly (410 Gone, "evicted") instead of
// indistinguishably from an ID that never existed (404).
const maxEvictedIDs = 1024

// Tracer assigns IDs and retains completed traces.
type Tracer struct {
	nextTrace atomic.Uint64
	nextSpan  atomic.Uint64

	mu     sync.Mutex
	ring   []*TraceRecord // newest last
	ringSz int
	// evicted remembers IDs pushed out of the ring (bounded FIFO): the
	// set answers "did this trace exist?", evictedOrder ages it out.
	evicted      map[string]struct{}
	evictedOrder []string
}

// NewTracer creates a tracer retaining up to ringSize completed traces
// (<= 0 uses the default of 128).
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = defaultTraceRing
	}
	return &Tracer{ringSz: ringSize}
}

var (
	defTracerOnce sync.Once
	defTracer     *Tracer
)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer {
	defTracerOnce.Do(func() { defTracer = NewTracer(defaultTraceRing) })
	return defTracer
}

// SpanRecord is one completed span.
type SpanRecord struct {
	SpanID   uint64            `json:"span_id"`
	ParentID uint64            `json:"parent_id,omitempty"` // 0 for the root
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	DurUS    int64             `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// TraceRecord is one completed trace: the root span plus every descendant
// that ended before the trace was finalized.
type TraceRecord struct {
	TraceID string       `json:"trace_id"`
	Root    string       `json:"root"`
	Start   time.Time    `json:"start"`
	DurUS   int64        `json:"dur_us"`
	Spans   []SpanRecord `json:"spans"`
	Dropped int          `json:"dropped_spans,omitempty"`
}

// activeTrace collects spans while the trace is open.
type activeTrace struct {
	tracer  *Tracer
	traceID string
	// remoteID, when set on a sentinel (traceID empty), makes the next
	// StartSpan root its trace under this externally assigned ID instead
	// of allocating a fresh one — the receiving half of X-Trace-Id
	// propagation across a process hop.
	remoteID string

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int
	done    bool
}

// Span is one in-flight operation. End() must be called exactly once;
// ending the root span finalizes the trace into the tracer's ring.
type Span struct {
	at     *activeTrace
	id     uint64
	parent uint64
	name   string
	start  time.Time
	root   bool

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

type ctxKey struct{}

// WithTracer returns a context whose future root spans are assigned by tr
// instead of the default tracer.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, ctxKey{}, &Span{at: &activeTrace{tracer: tr}})
}

// WithRemoteTraceID returns a context whose next StartSpan roots a span
// that joins the remote trace traceID (as carried by an X-Trace-Id header)
// instead of allocating a fresh ID. The resulting trace record lands in
// tr's ring under the remote ID, so the upstream hop's record and this
// process's record share one trace ID and /debug/traces?id= merges them
// into a single span tree. A nil tr uses the default tracer; an invalid
// traceID (see ValidTraceID) falls back to plain WithTracer semantics.
func WithRemoteTraceID(ctx context.Context, tr *Tracer, traceID string) context.Context {
	if tr == nil {
		tr = DefaultTracer()
	}
	if !ValidTraceID(traceID) {
		traceID = ""
	}
	return context.WithValue(ctx, ctxKey{}, &Span{at: &activeTrace{tracer: tr, remoteID: traceID}})
}

// ValidTraceID reports whether s is acceptable as a propagated trace ID:
// 1-32 hex digits, the shape this package generates. Anything else is
// rejected so a hostile header cannot inject arbitrary strings into the
// trace ring or logs.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// StartSpan opens a span named name. If ctx already carries a span, the
// new span joins that trace as a child; otherwise a fresh trace is rooted
// here (on the context's tracer if WithTracer was used, else the default
// tracer). The returned context carries the new span for further nesting.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	var at *activeTrace
	var parentID uint64
	root := false
	if parent != nil && parent.at.traceID != "" {
		at = parent.at
		parentID = parent.id
	} else {
		tr := DefaultTracer()
		remote := ""
		if parent != nil && parent.at.tracer != nil {
			tr = parent.at.tracer // WithTracer sentinel: tracer set, no trace yet
			remote = parent.at.remoteID
		}
		id := remote
		if id == "" {
			id = fmt.Sprintf("%016x", tr.nextTrace.Add(1))
		}
		at = &activeTrace{tracer: tr, traceID: id}
		root = true
	}
	sp := &Span{
		at:     at,
		id:     at.tracer.nextSpan.Add(1),
		parent: parentID,
		name:   name,
		start:  time.Now(),
		root:   root,
	}
	return context.WithValue(ctx, ctxKey{}, sp), sp
}

// TraceID returns the span's trace ID.
func (s *Span) TraceID() string { return s.at.traceID }

// SetAttr attaches a key=value annotation to the span.
func (s *Span) SetAttr(k, v string) {
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[k] = v
	s.mu.Unlock()
}

// End completes the span, recording it into its trace. Ending the root
// span finalizes the trace into the tracer's ring; spans that end after
// their root are discarded (the record is already published), and spans
// beyond the per-trace cap are counted in Dropped. End is idempotent.
func (s *Span) End() {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	rec := SpanRecord{
		SpanID:   s.id,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		DurUS:    time.Since(s.start).Microseconds(),
		Attrs:    attrs,
	}
	at := s.at
	at.mu.Lock()
	if at.done {
		at.mu.Unlock()
		return
	}
	if len(at.spans) >= maxSpansPerTrace {
		at.dropped++
	} else {
		at.spans = append(at.spans, rec)
	}
	if s.root && !at.done {
		at.done = true
		tr := &TraceRecord{
			TraceID: at.traceID,
			Root:    s.name,
			Start:   s.start,
			DurUS:   rec.DurUS,
			Spans:   at.spans,
			Dropped: at.dropped,
		}
		sort.Slice(tr.Spans, func(i, j int) bool { return tr.Spans[i].SpanID < tr.Spans[j].SpanID })
		at.mu.Unlock()
		at.tracer.push(tr)
		return
	}
	at.mu.Unlock()
}

// TraceIDFrom returns the trace ID carried by ctx, or "" when the context
// is untraced.
func TraceIDFrom(ctx context.Context) string {
	if sp, _ := ctx.Value(ctxKey{}).(*Span); sp != nil {
		return sp.at.traceID
	}
	return ""
}

func (t *Tracer) push(rec *TraceRecord) {
	t.mu.Lock()
	t.ring = append(t.ring, rec)
	if over := len(t.ring) - t.ringSz; over > 0 {
		for _, dropped := range t.ring[:over] {
			t.rememberEvictedLocked(dropped.TraceID)
		}
		t.ring = append(t.ring[:0], t.ring[over:]...)
	}
	t.mu.Unlock()
}

// rememberEvictedLocked records a ring-evicted trace ID in the bounded
// FIFO memory; the caller holds t.mu.
func (t *Tracer) rememberEvictedLocked(id string) {
	if t.evicted == nil {
		t.evicted = make(map[string]struct{}, maxEvictedIDs)
	}
	if _, dup := t.evicted[id]; dup {
		return
	}
	t.evicted[id] = struct{}{}
	t.evictedOrder = append(t.evictedOrder, id)
	if over := len(t.evictedOrder) - maxEvictedIDs; over > 0 {
		for _, old := range t.evictedOrder[:over] {
			delete(t.evicted, old)
		}
		t.evictedOrder = append(t.evictedOrder[:0], t.evictedOrder[over:]...)
	}
}

// Evicted reports whether traceID once lived in the ring but has been
// pushed out (within the bounded eviction memory). A cross-hop trace
// counts as evicted only for its dropped records; while any record under
// the ID survives, Lookup still succeeds and callers never reach for
// this.
func (t *Tracer) Evicted(traceID string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.evicted[traceID]
	return ok
}

// Recent returns up to n completed traces, newest first (n <= 0: all).
func (t *Tracer) Recent(n int) []*TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > len(t.ring) {
		n = len(t.ring)
	}
	out := make([]*TraceRecord, 0, n)
	for i := len(t.ring) - 1; i >= len(t.ring)-n; i-- {
		out = append(out, t.ring[i])
	}
	return out
}

// Lookup returns the completed trace with the given ID, or nil. When the
// ring holds several records under one ID (a trace that crossed a process
// hop: the router's record and the replica's record share the propagated
// ID), the newest is returned; LookupMerged assembles the full path.
func (t *Tracer) Lookup(traceID string) *TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.ring) - 1; i >= 0; i-- {
		if t.ring[i].TraceID == traceID {
			return t.ring[i]
		}
	}
	return nil
}

// LookupAll returns every completed record sharing traceID, oldest first.
// A trace that crossed the router→replica hop produces one record per
// participating server (each root span finalizes its own record under the
// shared ID).
func (t *Tracer) LookupAll(traceID string) []*TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*TraceRecord
	for _, rec := range t.ring {
		if rec.TraceID == traceID {
			out = append(out, rec)
		}
	}
	return out
}

// LookupMerged returns the trace with the given ID as a single record,
// merging the per-hop records of a cross-process trace: spans from every
// record are concatenated in start order, the root is the earliest hop's
// root, and the duration spans the earliest start to the latest span end.
// Returns nil when the ID is unknown.
func (t *Tracer) LookupMerged(traceID string) *TraceRecord {
	recs := t.LookupAll(traceID)
	switch len(recs) {
	case 0:
		return nil
	case 1:
		return recs[0]
	}
	merged := &TraceRecord{TraceID: traceID, Root: recs[0].Root, Start: recs[0].Start}
	var latest time.Time
	for _, rec := range recs {
		if rec.Start.Before(merged.Start) {
			merged.Start = rec.Start
			merged.Root = rec.Root
		}
		merged.Dropped += rec.Dropped
		merged.Spans = append(merged.Spans, rec.Spans...)
		for _, sp := range rec.Spans {
			if end := sp.Start.Add(time.Duration(sp.DurUS) * time.Microsecond); end.After(latest) {
				latest = end
			}
		}
	}
	sort.Slice(merged.Spans, func(i, j int) bool {
		if !merged.Spans[i].Start.Equal(merged.Spans[j].Start) {
			return merged.Spans[i].Start.Before(merged.Spans[j].Start)
		}
		return merged.Spans[i].SpanID < merged.Spans[j].SpanID
	})
	merged.DurUS = latest.Sub(merged.Start).Microseconds()
	return merged
}

// traceSummary is the list form served without ?id.
type traceSummary struct {
	TraceID string    `json:"trace_id"`
	Root    string    `json:"root"`
	Start   time.Time `json:"start"`
	DurUS   int64     `json:"dur_us"`
	Spans   int       `json:"spans"`
}

// Handler serves recent traces as JSON: GET /debug/traces lists
// summaries (newest first), GET /debug/traces?id=<trace_id> returns one
// full span tree.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if id := r.URL.Query().Get("id"); id != "" {
			rec := t.LookupMerged(id)
			if rec == nil {
				// Distinguish "never existed" (404) from "existed but
				// rotated out of the bounded ring" (410): exemplar links
				// on /metrics outlive the ring routinely, and the hint
				// tells the operator it was retention, not a bad ID.
				if t.Evicted(id) {
					w.WriteHeader(http.StatusGone)
					json.NewEncoder(w).Encode(map[string]string{
						"error":    "trace evicted from the ring",
						"trace_id": id,
						"hint":     "the bounded trace ring already rotated this trace out; scrape /debug/traces sooner or enlarge the ring (obs.NewTracer size)",
					})
					return
				}
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]string{"error": "trace not found", "trace_id": id})
				return
			}
			json.NewEncoder(w).Encode(rec)
			return
		}
		recs := t.Recent(0)
		sums := make([]traceSummary, 0, len(recs))
		for _, rec := range recs {
			sums = append(sums, traceSummary{
				TraceID: rec.TraceID, Root: rec.Root, Start: rec.Start,
				DurUS: rec.DurUS, Spans: len(rec.Spans),
			})
		}
		json.NewEncoder(w).Encode(sums)
	})
}
