package obs

import (
	"testing"
	"time"
)

func TestQuantileEdges(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.99, 0},
		{"empty p50", []float64{}, 0.5, 0},
		{"single p0", []float64{7}, 0, 7},
		{"single p50", []float64{7}, 0.5, 7},
		{"single p99", []float64{7}, 0.99, 7},
		{"single p100", []float64{7}, 1, 7},
		{"two p50", []float64{1, 2}, 0.5, 1},
		{"two p99", []float64{1, 2}, 0.99, 2},
		{"ten p99 picks max", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.99, 10},
		{"ten p50", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.5, 5},
		{"hundred p99", seq(100), 0.99, 98},
		{"hundred p95", seq(100), 0.95, 94},
		{"q0 picks min", []float64{3, 9, 27}, 0, 3},
		{"q1 picks max", []float64{3, 9, 27}, 1, 27},
		{"q beyond 1 clamps", []float64{3, 9, 27}, 2, 27},
		{"q below 0 clamps", []float64{3, 9, 27}, -1, 3},
	}
	for _, tc := range cases {
		if got := Quantile(tc.sorted, tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v, %g) = %g, want %g", tc.name, tc.sorted, tc.q, got, tc.want)
		}
	}
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestQuantileDur(t *testing.T) {
	if got := QuantileDur(nil, 0.99); got != 0 {
		t.Fatalf("empty QuantileDur = %v", got)
	}
	one := []time.Duration{time.Second}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := QuantileDur(one, q); got != time.Second {
			t.Fatalf("QuantileDur(n=1, q=%g) = %v", q, got)
		}
	}
	ds := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 100 * time.Millisecond}
	if got := QuantileDur(ds, 0.99); got != 100*time.Millisecond {
		t.Fatalf("p99 = %v, want 100ms", got)
	}
	if got := QuantileDur(ds, 0.5); got != 2*time.Millisecond {
		t.Fatalf("p50 = %v, want 2ms", got)
	}
}
