package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests.", "route", "code")
	c.Inc("/v1/recommend", "200")
	c.Inc("/v1/recommend", "200")
	c.Add(3, "/healthz", "200")
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(4)
	g.SetMax(9)
	g.SetMax(2) // lower: must not regress
	r.GaugeFunc("test_uptime", "Uptime.", func() float64 { return 1.5 })
	r.InfoFunc("test_model_info", "Model.", "version", func() string { return "v1-abcd" })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "route")
	h.Observe(0.05, "/v1/recommend")
	h.Observe(5, "/v1/recommend")

	out := r.Exposition()
	for _, want := range []string{
		`test_requests_total{route="/healthz",code="200"} 3`,
		`test_requests_total{route="/v1/recommend",code="200"} 2`,
		"test_depth 9",
		"test_uptime 1.5",
		`test_model_info{version="v1-abcd"} 1`,
		`test_latency_seconds_bucket{route="/v1/recommend",le="0.1"} 1`,
		`test_latency_seconds_bucket{route="/v1/recommend",le="+Inf"} 2`,
		`test_latency_seconds_sum{route="/v1/recommend"} 5.05`,
		`test_latency_seconds_count{route="/v1/recommend"} 2`,
		"# TYPE test_latency_seconds histogram",
		"# TYPE test_requests_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q\n---\n%s", want, out)
		}
	}
	if g.Value() != 9 {
		t.Fatalf("gauge value %g", g.Value())
	}
	if h.Count("/v1/recommend") != 2 {
		t.Fatalf("histogram count %d", h.Count("/v1/recommend"))
	}
}

func TestRegisterIdempotentAndMismatchPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "x", "l")
	b := r.Counter("test_total", "x", "l")
	a.Inc("v")
	b.Inc("v")
	if !strings.Contains(r.Exposition(), `test_total{l="v"} 2`) {
		t.Fatal("re-registered counter did not share series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("test_total", "x", "l")
}

// TestExpositionConformance feeds a registry with hostile label values and
// help text through a strict line parser implementing the text-format
// rules: legal metric/label names, only \\ \" \n escapes inside label
// values, TYPE before samples, cumulative buckets, and an explicit +Inf
// bucket equal to _count.
func TestExpositionConformance(t *testing.T) {
	r := NewRegistry()
	nasty := "back\\slash \"quoted\"\nnewline"
	r.Counter("conf_total", "Help with \\ backslash\nand newline.", "path").Inc(nasty)
	h := r.Histogram("conf_seconds", "Latency.", []float64{0.5, 2}, "route")
	h.Observe(0.4, nasty)
	h.Observe(1, nasty)
	h.Observe(99, nasty)
	r.InfoFunc("conf_info", "Version.", "version", func() string { return "v\"1\"" })
	r.GaugeFunc("conf_gauge", "G.", func() float64 { return -2.5 })

	if err := parseExposition(r.Exposition()); err != nil {
		t.Fatalf("conformance: %v\n---\n%s", err, r.Exposition())
	}
}

// parseExposition is a strict text-format parser used only by tests.
func parseExposition(page string) error {
	typed := map[string]string{}     // family -> kind
	sampled := map[string]bool{}     // family has emitted samples
	bucketCum := map[string]uint64{} // series-prefix -> last cumulative bucket
	bucketInf := map[string]uint64{} // series-prefix -> +Inf bucket value
	counts := map[string]uint64{}    // series-prefix -> _count value
	for ln, line := range strings.Split(page, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || !validName(parts[2]) {
				return fmt.Errorf("line %d: bad comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				if sampled[parts[2]] {
					return fmt.Errorf("line %d: TYPE after samples for %s", ln+1, parts[2])
				}
				typed[parts[2]] = parts[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v (%q)", ln+1, err, line)
		}
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				fam = base
			}
		}
		kind, ok := typed[fam]
		if !ok {
			return fmt.Errorf("line %d: sample for untyped family %s", ln+1, fam)
		}
		sampled[fam] = true
		if kind == "histogram" {
			key := fam + "|" + labelsWithout(labels, "le")
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: bucket without le", ln+1)
				}
				n, err := strconv.ParseUint(value, 10, 64)
				if err != nil {
					return fmt.Errorf("line %d: non-integer bucket %q", ln+1, value)
				}
				if n < bucketCum[key] {
					return fmt.Errorf("line %d: non-cumulative bucket", ln+1)
				}
				bucketCum[key] = n
				if le == "+Inf" {
					bucketInf[key] = n
				} else if _, err := strconv.ParseFloat(le, 64); err != nil {
					return fmt.Errorf("line %d: bad le %q", ln+1, le)
				}
			case strings.HasSuffix(name, "_count"):
				n, err := strconv.ParseUint(value, 10, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad _count %q", ln+1, value)
				}
				counts[key] = n
			case strings.HasSuffix(name, "_sum"):
				if _, err := strconv.ParseFloat(value, 64); err != nil {
					return fmt.Errorf("line %d: bad _sum %q", ln+1, value)
				}
			default:
				return fmt.Errorf("line %d: unexpected histogram sample %s", ln+1, name)
			}
		} else if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: bad value %q", ln+1, value)
		}
	}
	for key, inf := range bucketInf {
		if counts[key] != inf {
			return fmt.Errorf("series %s: +Inf bucket %d != count %d", key, inf, counts[key])
		}
	}
	for key := range bucketCum {
		if _, ok := bucketInf[key]; !ok {
			return fmt.Errorf("series %s: missing explicit +Inf bucket", key)
		}
	}
	return nil
}

func labelsWithout(labels map[string]string, drop string) string {
	var parts []string
	for k, v := range labels {
		if k != drop {
			parts = append(parts, k+"="+v)
		}
	}
	return strings.Join(parts, ",")
}

func validName(s string) bool {
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return len(s) > 0
}

// parseSample strictly parses one sample line: name, optional label block
// with only \\ \" \n escapes, one space, value.
func parseSample(line string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, "", fmt.Errorf("no separator")
	}
	name = line[:i]
	if !validName(name) {
		return "", nil, "", fmt.Errorf("bad metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		j := 1
		for {
			// label name
			k := j
			for k < len(rest) && rest[k] != '=' {
				k++
			}
			if k >= len(rest) || !validName(rest[j:k]) {
				return "", nil, "", fmt.Errorf("bad label name")
			}
			lname := rest[j:k]
			if k+1 >= len(rest) || rest[k+1] != '"' {
				return "", nil, "", fmt.Errorf("label value not quoted")
			}
			// label value with strict escapes
			var val strings.Builder
			j = k + 2
			for {
				if j >= len(rest) {
					return "", nil, "", fmt.Errorf("unterminated label value")
				}
				c := rest[j]
				if c == '"' {
					j++
					break
				}
				if c == '\n' {
					return "", nil, "", fmt.Errorf("raw newline in label value")
				}
				if c == '\\' {
					if j+1 >= len(rest) {
						return "", nil, "", fmt.Errorf("dangling escape")
					}
					switch rest[j+1] {
					case '\\', '"':
						val.WriteByte(rest[j+1])
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, "", fmt.Errorf("illegal escape \\%c", rest[j+1])
					}
					j += 2
					continue
				}
				val.WriteByte(c)
				j++
			}
			labels[lname] = val.String()
			if j < len(rest) && rest[j] == ',' {
				j++
				continue
			}
			if j < len(rest) && rest[j] == '}' {
				j++
				break
			}
			return "", nil, "", fmt.Errorf("bad label separator")
		}
		rest = rest[j:]
	}
	if len(rest) < 2 || rest[0] != ' ' {
		return "", nil, "", fmt.Errorf("missing value separator")
	}
	value = rest[1:]
	// OpenMetrics exemplar extension: `<value> # {labels} <exemplar-value>`.
	// Only _bucket samples carry it in our exposition; the parser accepts
	// it anywhere but insists on the full shape when the marker appears.
	if base, ex, ok := strings.Cut(value, " # "); ok {
		value = base
		if !strings.HasPrefix(ex, "{") {
			return "", nil, "", fmt.Errorf("exemplar without label block: %q", ex)
		}
		end := strings.LastIndex(ex, "} ")
		if end < 0 {
			return "", nil, "", fmt.Errorf("exemplar missing value: %q", ex)
		}
		if _, err := strconv.ParseFloat(ex[end+2:], 64); err != nil {
			return "", nil, "", fmt.Errorf("bad exemplar value %q", ex[end+2:])
		}
		// The exemplar label block reuses sample syntax; parse it by
		// grafting it onto a dummy metric name.
		if _, exLabels, _, err := parseSample("x" + ex[:end+1] + " 1"); err != nil {
			return "", nil, "", fmt.Errorf("bad exemplar labels %q: %v", ex[:end+1], err)
		} else if _, ok := exLabels["trace_id"]; !ok {
			return "", nil, "", fmt.Errorf("exemplar without trace_id: %q", ex)
		}
	}
	return name, labels, value, nil
}

// TestConcurrentScrape hammers one registry from 16 goroutines that
// register, observe, and expose simultaneously — the -race guard for the
// shared process-wide registry.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c := r.Counter("race_total", "x", "worker")
				c.Inc(fmt.Sprintf("w%d", g%4))
				h := r.Histogram("race_seconds", "x", []float64{0.1, 1, 10}, "op")
				h.Observe(float64(i)/50, "op")
				r.Gauge("race_depth", "x").Set(float64(i))
				r.GaugeFunc("race_live", "x", func() float64 { return float64(g) })
				if i%10 == 0 {
					if err := parseExposition(r.Exposition()); err != nil {
						t.Errorf("goroutine %d iter %d: %v", g, i, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	out := r.Exposition()
	if !strings.Contains(out, `race_total{worker="w0"}`) {
		t.Fatalf("missing series after concurrent load:\n%s", out)
	}
	var total float64
	c := r.Counter("race_total", "x", "worker")
	_ = c
	for w := 0; w < 4; w++ {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, fmt.Sprintf(`race_total{worker="w%d"} `, w)) {
				v, _ := strconv.ParseFloat(strings.Fields(line)[1], 64)
				total += v
			}
		}
	}
	if total != goroutines*iters {
		t.Fatalf("lost increments: %g, want %d", total, goroutines*iters)
	}
}
