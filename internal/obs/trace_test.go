package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestSpanTreeAcrossGoroutines(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTracer(context.Background(), tr)
	rootCtx, root := StartSpan(ctx, "request")
	id := root.TraceID()
	if id == "" || len(id) != 16 {
		t.Fatalf("trace ID %q", id)
	}
	if TraceIDFrom(rootCtx) != id {
		t.Fatal("context does not carry the trace ID")
	}

	// Children on other goroutines join the same trace via the context.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			childCtx, child := StartSpan(rootCtx, "decode")
			child.SetAttr("batch", "3")
			_, grand := StartSpan(childCtx, "chunk")
			grand.End()
			child.End()
		}()
	}
	wg.Wait()
	root.End()

	rec := tr.Lookup(id)
	if rec == nil {
		t.Fatal("completed trace not in ring")
	}
	if rec.Root != "request" {
		t.Fatalf("root %q", rec.Root)
	}
	names := map[string]int{}
	rootSpans := 0
	for _, sp := range rec.Spans {
		names[sp.Name]++
		if sp.ParentID == 0 {
			rootSpans++
		}
	}
	if names["request"] != 1 || names["decode"] != 3 || names["chunk"] != 3 {
		t.Fatalf("span names %v", names)
	}
	if rootSpans != 1 {
		t.Fatalf("%d root spans", rootSpans)
	}
	// Every chunk's parent must be a decode span in the same trace.
	byID := map[uint64]SpanRecord{}
	for _, sp := range rec.Spans {
		byID[sp.SpanID] = sp
	}
	for _, sp := range rec.Spans {
		if sp.Name == "chunk" && byID[sp.ParentID].Name != "decode" {
			t.Fatalf("chunk parented to %q", byID[sp.ParentID].Name)
		}
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	var last string
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, "op")
		last = sp.TraceID()
		sp.End()
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	if recent[0].TraceID != last {
		t.Fatal("newest trace not first")
	}
}

func TestSpanEndIdempotentAndLateChildren(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	rootCtx, root := StartSpan(ctx, "root")
	_, late := StartSpan(rootCtx, "late")
	root.End()
	root.End() // idempotent
	late.End() // after finalize: discarded, never a panic or a data race
	rec := tr.Lookup(root.TraceID())
	if rec == nil || rec.Dropped != 0 || len(rec.Spans) != 1 {
		t.Fatalf("record %+v", rec)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	c, sp := StartSpan(ctx, "req")
	_, child := StartSpan(c, "inner")
	child.End()
	sp.End()

	// List form.
	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	var sums []traceSummary
	if err := json.Unmarshal(rr.Body.Bytes(), &sums); err != nil || len(sums) != 1 {
		t.Fatalf("list: %v %s", err, rr.Body)
	}
	if sums[0].Spans != 2 || sums[0].Root != "req" {
		t.Fatalf("summary %+v", sums[0])
	}
	// Lookup form.
	rr = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?id="+sp.TraceID(), nil))
	if !strings.Contains(rr.Body.String(), `"name":"inner"`) {
		t.Fatalf("trace body %s", rr.Body)
	}
	// Missing trace -> 404.
	rr = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?id=ffffffffffffffff", nil))
	if rr.Code != 404 {
		t.Fatalf("missing trace: %d", rr.Code)
	}
}

func TestUntracedContext(t *testing.T) {
	if TraceIDFrom(context.Background()) != "" {
		t.Fatal("background context should be untraced")
	}
	// StartSpan on a bare context roots a trace on the default tracer and
	// must not panic.
	ctx, sp := StartSpan(context.Background(), "orphan")
	if TraceIDFrom(ctx) == "" {
		t.Fatal("orphan span has no trace")
	}
	sp.End()
}
