package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestSpanTreeAcrossGoroutines(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTracer(context.Background(), tr)
	rootCtx, root := StartSpan(ctx, "request")
	id := root.TraceID()
	if id == "" || len(id) != 16 {
		t.Fatalf("trace ID %q", id)
	}
	if TraceIDFrom(rootCtx) != id {
		t.Fatal("context does not carry the trace ID")
	}

	// Children on other goroutines join the same trace via the context.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			childCtx, child := StartSpan(rootCtx, "decode")
			child.SetAttr("batch", "3")
			_, grand := StartSpan(childCtx, "chunk")
			grand.End()
			child.End()
		}()
	}
	wg.Wait()
	root.End()

	rec := tr.Lookup(id)
	if rec == nil {
		t.Fatal("completed trace not in ring")
	}
	if rec.Root != "request" {
		t.Fatalf("root %q", rec.Root)
	}
	names := map[string]int{}
	rootSpans := 0
	for _, sp := range rec.Spans {
		names[sp.Name]++
		if sp.ParentID == 0 {
			rootSpans++
		}
	}
	if names["request"] != 1 || names["decode"] != 3 || names["chunk"] != 3 {
		t.Fatalf("span names %v", names)
	}
	if rootSpans != 1 {
		t.Fatalf("%d root spans", rootSpans)
	}
	// Every chunk's parent must be a decode span in the same trace.
	byID := map[uint64]SpanRecord{}
	for _, sp := range rec.Spans {
		byID[sp.SpanID] = sp
	}
	for _, sp := range rec.Spans {
		if sp.Name == "chunk" && byID[sp.ParentID].Name != "decode" {
			t.Fatalf("chunk parented to %q", byID[sp.ParentID].Name)
		}
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	var last string
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, "op")
		last = sp.TraceID()
		sp.End()
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	if recent[0].TraceID != last {
		t.Fatal("newest trace not first")
	}
}

func TestSpanEndIdempotentAndLateChildren(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	rootCtx, root := StartSpan(ctx, "root")
	_, late := StartSpan(rootCtx, "late")
	root.End()
	root.End() // idempotent
	late.End() // after finalize: discarded, never a panic or a data race
	rec := tr.Lookup(root.TraceID())
	if rec == nil || rec.Dropped != 0 || len(rec.Spans) != 1 {
		t.Fatalf("record %+v", rec)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(4)
	ctx := WithTracer(context.Background(), tr)
	c, sp := StartSpan(ctx, "req")
	_, child := StartSpan(c, "inner")
	child.End()
	sp.End()

	// List form.
	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces", nil))
	var sums []traceSummary
	if err := json.Unmarshal(rr.Body.Bytes(), &sums); err != nil || len(sums) != 1 {
		t.Fatalf("list: %v %s", err, rr.Body)
	}
	if sums[0].Spans != 2 || sums[0].Root != "req" {
		t.Fatalf("summary %+v", sums[0])
	}
	// Lookup form.
	rr = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?id="+sp.TraceID(), nil))
	if !strings.Contains(rr.Body.String(), `"name":"inner"`) {
		t.Fatalf("trace body %s", rr.Body)
	}
	// Missing trace -> 404.
	rr = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?id=ffffffffffffffff", nil))
	if rr.Code != 404 {
		t.Fatalf("missing trace: %d", rr.Code)
	}
}

func TestUntracedContext(t *testing.T) {
	if TraceIDFrom(context.Background()) != "" {
		t.Fatal("background context should be untraced")
	}
	// StartSpan on a bare context roots a trace on the default tracer and
	// must not panic.
	ctx, sp := StartSpan(context.Background(), "orphan")
	if TraceIDFrom(ctx) == "" {
		t.Fatal("orphan span has no trace")
	}
	sp.End()
}

func TestWithRemoteTraceIDJoinsTrace(t *testing.T) {
	tr := NewTracer(8)

	// Hop 1 (the "router"): roots a trace normally.
	ctx1 := WithTracer(context.Background(), tr)
	ctx1, root := StartSpan(ctx1, "POST /v1/recommend (router)")
	_, fwd := StartSpan(ctx1, "forward")
	traceID := root.TraceID()
	fwd.End()
	root.End()

	// Hop 2 (the "replica"): adopts the propagated ID, as if read from an
	// X-Trace-Id header.
	ctx2 := WithRemoteTraceID(context.Background(), tr, traceID)
	ctx2, rep := StartSpan(ctx2, "POST /v1/recommend")
	if rep.TraceID() != traceID {
		t.Fatalf("replica span trace %s, want adopted %s", rep.TraceID(), traceID)
	}
	_, dec := StartSpan(ctx2, "decoder_session")
	dec.End()
	rep.End()

	// Both hops share the ID; LookupMerged assembles the full path.
	all := tr.LookupAll(traceID)
	if len(all) != 2 {
		t.Fatalf("LookupAll found %d records, want 2 (one per hop)", len(all))
	}
	merged := tr.LookupMerged(traceID)
	if merged == nil {
		t.Fatal("LookupMerged returned nil")
	}
	if merged.Root != "POST /v1/recommend (router)" {
		t.Fatalf("merged root %q, want the earliest hop's root", merged.Root)
	}
	var names []string
	for _, sp := range merged.Spans {
		names = append(names, sp.Name)
	}
	want := map[string]bool{
		"POST /v1/recommend (router)": true, "forward": true,
		"POST /v1/recommend": true, "decoder_session": true,
	}
	if len(names) != len(want) {
		t.Fatalf("merged spans %v, want the 4 spans of both hops", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected merged span %q in %v", n, names)
		}
	}
}

func TestWithRemoteTraceIDRejectsInvalid(t *testing.T) {
	tr := NewTracer(8)
	for _, bad := range []string{"", "XYZ!", "deadbeefdeadbeefdeadbeefdeadbeef0", "../../etc"} {
		if ValidTraceID(bad) {
			t.Fatalf("ValidTraceID(%q) = true, want false", bad)
		}
		ctx := WithRemoteTraceID(context.Background(), tr, bad)
		_, sp := StartSpan(ctx, "root")
		if sp.TraceID() == bad {
			t.Fatalf("invalid remote ID %q was adopted", bad)
		}
		sp.End()
	}
	for _, good := range []string{"0", "deadbeef", "0123456789abcdefABCDEF0123456789"} {
		if !ValidTraceID(good) {
			t.Fatalf("ValidTraceID(%q) = false, want true", good)
		}
	}
}
