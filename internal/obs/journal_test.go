package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	type epoch struct {
		Epoch int     `json:"epoch"`
		Loss  float64 `json:"loss"`
	}
	for i := 0; i < 3; i++ {
		if err := j.Record("train_epoch", epoch{Epoch: i, Loss: 1.0 / float64(i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Record("checkpoint_saved", map[string]string{"path": "ckpt.bin"}); err != nil {
		t.Fatal(err)
	}

	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("%d entries", len(entries))
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d seq %d", i, e.Seq)
		}
		if e.Time.IsZero() || time.Since(e.Time) > time.Minute {
			t.Fatalf("entry %d bad timestamp %v", i, e.Time)
		}
	}
	var ep epoch
	if err := json.Unmarshal(entries[2].Data, &ep); err != nil || ep.Epoch != 2 {
		t.Fatalf("payload: %v %+v", err, ep)
	}
	if entries[3].Event != "checkpoint_saved" {
		t.Fatalf("event %q", entries[3].Event)
	}
}

func TestJournalNilDisabled(t *testing.T) {
	var j *Journal
	if err := j.Record("anything", map[string]int{"x": 1}); err != nil {
		t.Fatal("nil journal must be a no-op")
	}
}

func TestJournalRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.maxBytes = 512
	big := strings.Repeat("x", 100)
	const n = 20
	for i := 0; i < n; i++ {
		if err := j.Record("ev", map[string]any{"i": i, "pad": big}); err != nil {
			t.Fatal(err)
		}
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() > 1024 {
		t.Fatalf("active segment not rotated: %v", err)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("rotated segment missing: %v", err)
	}
	// Rotation drops at most the segments before <path>.1, keeping a
	// contiguous, ordered tail ending at the latest entry.
	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || entries[len(entries)-1].Seq != n {
		t.Fatalf("latest entry missing (got %d entries)", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Seq != entries[i-1].Seq+1 {
			t.Fatal("journal tail not contiguous")
		}
	}
}

func TestJournalTruncatesPreviousRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j1, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j1.Record("old", nil)
	j2, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Record("new", nil)
	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Event != "new" {
		t.Fatalf("entries %+v", entries)
	}
}
