package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	type epoch struct {
		Epoch int     `json:"epoch"`
		Loss  float64 `json:"loss"`
	}
	for i := 0; i < 3; i++ {
		if err := j.Record("train_epoch", epoch{Epoch: i, Loss: 1.0 / float64(i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Record("checkpoint_saved", map[string]string{"path": "ckpt.bin"}); err != nil {
		t.Fatal(err)
	}

	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("%d entries", len(entries))
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d seq %d", i, e.Seq)
		}
		if e.Time.IsZero() || time.Since(e.Time) > time.Minute {
			t.Fatalf("entry %d bad timestamp %v", i, e.Time)
		}
	}
	var ep epoch
	if err := json.Unmarshal(entries[2].Data, &ep); err != nil || ep.Epoch != 2 {
		t.Fatalf("payload: %v %+v", err, ep)
	}
	if entries[3].Event != "checkpoint_saved" {
		t.Fatalf("event %q", entries[3].Event)
	}
}

func TestJournalNilDisabled(t *testing.T) {
	var j *Journal
	if err := j.Record("anything", map[string]int{"x": 1}); err != nil {
		t.Fatal("nil journal must be a no-op")
	}
}

func TestJournalRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.maxBytes = 512
	big := strings.Repeat("x", 100)
	const n = 20
	for i := 0; i < n; i++ {
		if err := j.Record("ev", map[string]any{"i": i, "pad": big}); err != nil {
			t.Fatal(err)
		}
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() > 1024 {
		t.Fatalf("active segment not rotated: %v", err)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("rotated segment missing: %v", err)
	}
	// Rotation drops at most the segments before <path>.1, keeping a
	// contiguous, ordered tail ending at the latest entry.
	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || entries[len(entries)-1].Seq != n {
		t.Fatalf("latest entry missing (got %d entries)", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Seq != entries[i-1].Seq+1 {
			t.Fatal("journal tail not contiguous")
		}
	}
}

// writeJournalSegment hand-crafts a journal file holding entries
// [from, to] so tests can stage the exact on-disk states a reader racing
// a rotation would observe.
func writeJournalSegment(t *testing.T, path string, from, to uint64) {
	t.Helper()
	var buf strings.Builder
	for s := from; s <= to; s++ {
		b, err := json.Marshal(Entry{Seq: s, Time: time.Now().UTC(), Event: "ev"})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func assertSeqRange(t *testing.T, entries []Entry, from, to uint64) {
	t.Helper()
	if len(entries) != int(to-from+1) {
		t.Fatalf("got %d entries, want seqs %d..%d", len(entries), from, to)
	}
	for i, e := range entries {
		if e.Seq != from+uint64(i) {
			t.Fatalf("entry %d has seq %d, want %d", i, e.Seq, from+uint64(i))
		}
	}
}

func TestJournalReadDedupesRotationDuplicate(t *testing.T) {
	// Mid-rotation state: the segment has been atomically written to
	// <path>.1 but the active file has not been shrunk yet, so both files
	// hold the same entries. The reassembly must return them exactly once.
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeJournalSegment(t, path+".1", 1, 5)
	writeJournalSegment(t, path, 1, 5)
	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSeqRange(t, entries, 1, 5)

	// Partial overlap: active has the boundary entries plus newer ones.
	writeJournalSegment(t, path, 4, 9)
	entries, err = ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSeqRange(t, entries, 1, 9)
}

func TestJournalReadRetriesRotationDrop(t *testing.T) {
	// A rotation landing between the reader's two opens: the reader takes
	// segment A from <path>.1, then the writer rotates B into <path>.1 and
	// restarts the active file at entry 11. The old reassembly returned
	// A + {11} and silently dropped all of B; now the seq gap triggers a
	// re-read whose union recovers every entry exactly once.
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeJournalSegment(t, path+".1", 1, 5)  // segment A
	writeJournalSegment(t, path, 6, 10)      // segment B, still active
	rotated := false
	journalReadGapHook = func() {
		if rotated {
			return
		}
		rotated = true
		writeJournalSegment(t, path+".1", 6, 10) // B rotates out
		writeJournalSegment(t, path, 11, 11)     // active restarts
	}
	defer func() { journalReadGapHook = nil }()
	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSeqRange(t, entries, 1, 11)
}

func TestJournalReadStraddlesLiveRotation(t *testing.T) {
	// End-to-end rotation straddle against a real Journal: the test hook
	// fires a Record that triggers rotation exactly inside the reassembly
	// window. Every recorded entry must come back exactly once.
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.maxBytes = 256
	pad := strings.Repeat("x", 90)
	record := func() {
		if err := j.Record("ev", map[string]string{"pad": pad}); err != nil {
			t.Fatal(err)
		}
	}
	// Fill until a rotation has happened and the active segment is one
	// Record away from the next one.
	for i := 0; i < 6; i++ {
		record()
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("precondition: no rotation yet: %v", err)
	}
	fired := false
	journalReadGapHook = func() {
		if fired {
			return
		}
		fired = true
		record() // at 256-byte segments this Record rotates
	}
	defer func() { journalReadGapHook = nil }()
	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("gap hook never fired")
	}
	// The reader's first pass took <path>.1 before the straddling rotation
	// and the active file after it — the state that used to drop the
	// rotated segment. The retry's union must return the retained tail
	// (segments older than the rotation kept at first-read time are gone
	// by design) exactly once, gap-free: seqs 5..7.
	assertSeqRange(t, entries, 5, 7)
}

func TestJournalConcurrentReadersAndWriter(t *testing.T) {
	// A writer rotating every few Records races readers reassembling the
	// file. Readers must never see a duplicate seq or a torn line; under
	// -race this also proves the reassembly path shares no state with the
	// writer beyond the files themselves.
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.maxBytes = 512
	pad := strings.Repeat("y", 100)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 60; i++ {
			if err := j.Record("ev", map[string]any{"i": i, "pad": pad}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for {
		entries, err := ReadJournalFile(path)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]bool)
		for _, e := range entries {
			if seen[e.Seq] {
				t.Fatalf("duplicate seq %d in concurrent read", e.Seq)
			}
			seen[e.Seq] = true
		}
		select {
		case <-done:
			return
		default:
		}
	}
}

func TestJournalTruncatesPreviousRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j1, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j1.Record("old", nil)
	j2, err := NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Record("new", nil)
	entries, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Event != "new" {
		t.Fatalf("entries %+v", entries)
	}
}
