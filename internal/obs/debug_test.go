package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugMuxSurface(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dbg_total", "x").Inc()
	tr := NewTracer(4)
	ts := httptest.NewServer(DebugMux(reg, tr))
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "dbg_total 1") {
		t.Fatalf("/metrics: %d %s", code, body)
	}
	if code, body := get("/debug/traces"); code != 200 || !strings.HasPrefix(strings.TrimSpace(body), "[") {
		t.Fatalf("/debug/traces: %d %s", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

func TestStartDebugServer(t *testing.T) {
	d, err := StartDebugServer("", nil, nil)
	if err != nil || d != nil {
		t.Fatalf("empty addr: %v %v", d, err)
	}
	if err := d.Close(); err != nil { // nil receiver is safe
		t.Fatal(err)
	}
	d, err = StartDebugServer("127.0.0.1:0", NewRegistry(), NewTracer(4))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sidecar /metrics: %d", resp.StatusCode)
	}
}
