package slo

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"insightalign/internal/obs"
)

// testEngine builds an engine on a mutable fake clock with tight windows:
// availability target 90%, fast 5s / slow 60s, page at burn 8, warn at 2.
// With 100% errors the burn is 1/(1-0.9) = 10, comfortably past page.
func testEngine(t *testing.T, cfg Config) (*Engine, *time.Time) {
	t.Helper()
	clk := time.Unix(1_000_000, 0)
	if cfg.Objectives == nil {
		cfg.Objectives = []Objective{{
			Name: "availability", Kind: Availability, Target: 0.9,
			FastWindow: 5 * time.Second, SlowWindow: 60 * time.Second,
			PageBurn: 8, WarnBurn: 2,
		}}
	}
	cfg.Now = func() time.Time { return clk }
	return New(cfg), &clk
}

// feed pushes n requests with the given code at the clock's current
// instant into scope.
func feed(e *Engine, scope string, code int, d time.Duration, n int) {
	for i := 0; i < n; i++ {
		e.ObserveRequest(scope, code, d)
	}
}

func verdictFor(rep Report, objective, scope string) *Verdict {
	for i := range rep.Verdicts {
		if rep.Verdicts[i].Objective == objective && rep.Verdicts[i].Scope == scope {
			return &rep.Verdicts[i]
		}
	}
	return nil
}

func TestDefaultsResolved(t *testing.T) {
	e := New(Config{})
	objs := e.Objectives()
	if len(objs) != 2 {
		t.Fatalf("default objectives = %d, want 2", len(objs))
	}
	for _, o := range objs {
		if o.FastWindow != 5*time.Minute || o.SlowWindow != time.Hour {
			t.Fatalf("%s windows = %v/%v, want 5m/1h", o.Name, o.FastWindow, o.SlowWindow)
		}
		if o.PageBurn != 14.4 || o.WarnBurn != 3 {
			t.Fatalf("%s burns = %v/%v, want 14.4/3", o.Name, o.PageBurn, o.WarnBurn)
		}
	}
	if objs[1].Kind != Latency || objs[1].Threshold != 500*time.Millisecond {
		t.Fatalf("latency objective = %+v", objs[1])
	}
}

func TestNilEngineSafe(t *testing.T) {
	var e *Engine
	e.ObserveRequest("all", 200, time.Millisecond)
	e.EvictScope("x")
	if got := e.Worst(); got != StateOK {
		t.Fatalf("nil engine Worst = %v", got)
	}
	if rep := e.Report(); rep.Worst != "ok" || len(rep.Verdicts) != 0 {
		t.Fatalf("nil engine Report = %+v", rep)
	}
}

// TestBrownoutPagesAndRecovers walks the canonical multiwindow episode:
// steady good traffic (ok) → sustained 100% errors (page once BOTH
// windows burn) → recovery (fast window clears first, de-paging quickly
// even while the slow window still remembers the incident).
func TestBrownoutPagesAndRecovers(t *testing.T) {
	var transitions []string
	e, clk := testEngine(t, Config{OnTransition: func(obj, scope string, from, to State) {
		transitions = append(transitions, scope+":"+from.String()+">"+to.String())
	}})

	// 10s of healthy traffic.
	for i := 0; i < 10; i++ {
		feed(e, AggregateScope, 200, time.Millisecond, 5)
		*clk = clk.Add(time.Second)
	}
	if got := e.Worst(); got != StateOK {
		t.Fatalf("healthy traffic state = %v, want ok", got)
	}

	// 3s of errors: the fast window starts burning but the slow window
	// is still diluted by the healthy history — multiwindow must NOT
	// page on a short blip.
	for i := 0; i < 3; i++ {
		feed(e, AggregateScope, 500, time.Millisecond, 10)
		*clk = clk.Add(time.Second)
	}
	if got := e.Worst(); got == StatePage {
		t.Fatal("paged on a short blip; slow window should have held it back")
	}

	// 7 more seconds of heavy errors: fast window 100% bad (burn 10) and
	// slow window 100 bad vs 50 good (errRate 2/3 → burn 6.7)... keep
	// going until the slow window crosses too.
	for i := 0; i < 12; i++ {
		feed(e, AggregateScope, 500, time.Millisecond, 20)
		*clk = clk.Add(time.Second)
	}
	if got := e.Worst(); got != StatePage {
		t.Fatalf("sustained brownout state = %v, want page\n%s", got, e.Report().Text())
	}

	// Recovery: good traffic refills the fast window within ~5s and the
	// engine de-pages even though the slow window still shows the burn.
	for i := 0; i < 8; i++ {
		feed(e, AggregateScope, 200, time.Millisecond, 20)
		*clk = clk.Add(time.Second)
	}
	if got := e.Worst(); got == StatePage {
		t.Fatalf("still paging %v after the fast window cleared\n%s", got, e.Report().Text())
	}
	// Once the slow window dilutes/expires the incident, fully ok.
	for i := 0; i < 60; i++ {
		feed(e, AggregateScope, 200, time.Millisecond, 20)
		*clk = clk.Add(time.Second)
	}
	if got := e.Worst(); got != StateOK {
		t.Fatalf("post-recovery state = %v, want ok\n%s", got, e.Report().Text())
	}

	// The transition log must contain a page and a later return to ok.
	joined := strings.Join(transitions, " ")
	pageAt := strings.Index(joined, ">page")
	okAt := strings.LastIndex(joined, ">ok")
	if pageAt < 0 || okAt < pageAt {
		t.Fatalf("transitions missed page→ok: %v", transitions)
	}
}

// TestLatencyObjective checks the latency SLI: slow-but-successful
// requests burn it, 5xx requests are excluded entirely.
func TestLatencyObjective(t *testing.T) {
	e, clk := testEngine(t, Config{Objectives: []Objective{{
		Name: "latency", Kind: Latency, Target: 0.9, Threshold: 100 * time.Millisecond,
		FastWindow: 5 * time.Second, SlowWindow: 60 * time.Second,
		PageBurn: 8, WarnBurn: 2,
	}}})
	// 5xx storms must not touch the latency SLI at all.
	for i := 0; i < 20; i++ {
		feed(e, AggregateScope, 500, 5*time.Second, 10)
		*clk = clk.Add(time.Second)
	}
	rep := e.Report()
	v := verdictFor(rep, "latency", AggregateScope)
	if v == nil || v.SlowTotal != 0 {
		t.Fatalf("5xx leaked into the latency SLI: %+v", v)
	}
	// Sustained slow-but-200 traffic pages it.
	for i := 0; i < 70; i++ {
		feed(e, AggregateScope, 200, time.Second, 10)
		*clk = clk.Add(time.Second)
	}
	if got := e.Worst(); got != StatePage {
		t.Fatalf("slow traffic state = %v, want page\n%s", got, e.Report().Text())
	}
}

// TestScopeLRUBounded feeds more scopes than MaxScopes and asserts the
// stalest one is evicted while the aggregate is immune.
func TestScopeLRUBounded(t *testing.T) {
	e, clk := testEngine(t, Config{MaxScopes: 2})
	feed(e, AggregateScope, 200, time.Millisecond, 1)
	feed(e, "v1", 200, time.Millisecond, 1)
	*clk = clk.Add(time.Second)
	feed(e, "v2", 200, time.Millisecond, 1)
	*clk = clk.Add(time.Second)
	feed(e, "v1", 200, time.Millisecond, 1) // touch v1 so v2 is stalest
	*clk = clk.Add(time.Second)
	feed(e, "v3", 200, time.Millisecond, 1) // over cap: v2 must go
	rep := e.Report()
	scopes := map[string]bool{}
	for _, v := range rep.Verdicts {
		scopes[v.Scope] = true
	}
	if !scopes[AggregateScope] || !scopes["v1"] || !scopes["v3"] || scopes["v2"] {
		t.Fatalf("LRU eviction wrong, scopes = %v", scopes)
	}
	if len(rep.Verdicts) != 3 {
		t.Fatalf("verdicts = %d, want 3 (aggregate + 2 scopes)", len(rep.Verdicts))
	}
	// Aggregate sorts first.
	if rep.Verdicts[0].Scope != AggregateScope {
		t.Fatalf("aggregate not first: %+v", rep.Verdicts[0])
	}
}

func TestEvictScope(t *testing.T) {
	e, _ := testEngine(t, Config{})
	feed(e, "v1", 200, time.Millisecond, 5)
	feed(e, AggregateScope, 200, time.Millisecond, 5)
	e.EvictScope("v1")
	e.EvictScope(AggregateScope) // reserved: must be a no-op
	rep := e.Report()
	if len(rep.Verdicts) != 1 || rep.Verdicts[0].Scope != AggregateScope {
		t.Fatalf("after eviction verdicts = %+v", rep.Verdicts)
	}
}

// TestJournaledAlerts drives a page through a real on-disk journal and
// replays it, asserting the slo_alert events round-trip.
func TestJournaledAlerts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := obs.NewJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	e, clk := testEngine(t, Config{Journal: j})
	for i := 0; i < 5; i++ {
		feed(e, AggregateScope, 200, time.Millisecond, 5)
		*clk = clk.Add(time.Second)
	}
	for i := 0; i < 20; i++ {
		feed(e, AggregateScope, 500, time.Millisecond, 20)
		*clk = clk.Add(time.Second)
	}
	if got := e.Worst(); got != StatePage {
		t.Fatalf("state = %v, want page", got)
	}
	entries, err := obs.ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var sawPage bool
	for _, en := range entries {
		if en.Event != EventSLOAlert {
			continue
		}
		var ev AlertEvent
		if err := json.Unmarshal(en.Data, &ev); err != nil {
			t.Fatalf("slo_alert data: %v", err)
		}
		if ev.To == "page" {
			sawPage = true
			if ev.Objective != "availability" || ev.Scope != AggregateScope || ev.FastBurn < 8 {
				t.Fatalf("page event malformed: %+v", ev)
			}
		}
	}
	if !sawPage {
		t.Fatalf("no journaled page transition in %d entries", len(entries))
	}
}

// TestHandlerFormats exercises /debug/slo in JSON and text form.
func TestHandlerFormats(t *testing.T) {
	e, _ := testEngine(t, Config{})
	feed(e, "v1", 200, time.Millisecond, 3)
	feed(e, AggregateScope, 200, time.Millisecond, 3)

	rec := httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/slo", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("JSON response: %d %s", rec.Code, rec.Header().Get("Content-Type"))
	}
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Worst != "ok" || len(rep.Verdicts) != 2 {
		t.Fatalf("report = %+v", rep)
	}

	rec = httptest.NewRecorder()
	e.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/slo?format=text", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "OBJECTIVE") || !strings.Contains(body, AggregateScope) {
		t.Fatalf("text dashboard missing columns:\n%s", body)
	}
}

// TestLazyEvaluationCadence asserts observe-path evaluation is rate
// limited: two observes inside one evalEvery window trigger at most one
// evaluation, so the hot path stays cheap.
func TestLazyEvaluationCadence(t *testing.T) {
	evals := 0
	e, clk := testEngine(t, Config{OnTransition: func(string, string, State, State) { evals++ }})
	// Drive straight into page territory; the number of transitions is 1
	// regardless of how many observes happen, but lastEval gating is what
	// we time here: with a frozen clock only the first observe evaluates.
	feed(e, AggregateScope, 500, time.Millisecond, 100)
	first := e.lastEval
	feed(e, AggregateScope, 500, time.Millisecond, 100)
	if !e.lastEval.Equal(first) {
		t.Fatal("second observe re-evaluated inside the rate-limit window")
	}
	*clk = clk.Add(time.Second) // > evalEvery = 625ms
	feed(e, AggregateScope, 500, time.Millisecond, 1)
	if e.lastEval.Equal(first) {
		t.Fatal("observe past the rate-limit window did not re-evaluate")
	}
}
