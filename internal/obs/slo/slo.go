// Package slo is the self-judging layer of the observability stack: a
// declarative service-level-objective engine evaluating availability and
// latency objectives with multi-window burn rates, in the style of the
// SRE-workbook multiwindow/multi-burn-rate alerting policy.
//
// Each objective declares a target good-fraction (e.g. 99.9% of requests
// non-5xx, 95% of requests under 500ms) and two sliding windows: a fast
// one (default 5m) that makes paging responsive and de-pages quickly once
// the burn stops, and a slow one (default 1h) that keeps a short blip
// from paging at all. The burn rate is errRate / (1 - target) — burn 1.0
// consumes exactly the error budget, burn 14.4 on a 99.9% objective eats
// a 30-day budget in under two days. The state machine is:
//
//	page  when BOTH windows burn at >= PageBurn
//	warn  when BOTH windows burn at >= WarnBurn (but not page)
//	ok    otherwise
//
// Objectives are evaluated per scope — the serving tier feeds one scope
// per live model version plus the "all" aggregate, the fleet router one
// per replica — with bounded scope cardinality (LRU eviction past
// MaxScopes, explicit EvictScope on model reload). Every state
// transition is journaled as a "slo_alert" event through obs.Journal, so
// alert history replays from disk like the rest of the run record.
package slo

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"insightalign/internal/obs"
)

// Kind selects an objective's service-level indicator.
type Kind int

const (
	// Availability counts a request good when its status code is < 500.
	Availability Kind = iota
	// Latency counts a non-5xx request good when it finished within
	// Threshold; 5xx requests are excluded from the latency SLI entirely
	// (they already burn the availability objective, and a fast error
	// must not count as a latency success).
	Latency
)

func (k Kind) String() string {
	if k == Latency {
		return "latency"
	}
	return "availability"
}

// State is one (objective, scope) verdict.
type State int

const (
	StateOK State = iota
	StateWarn
	StatePage
)

func (s State) String() string {
	switch s {
	case StatePage:
		return "page"
	case StateWarn:
		return "warn"
	default:
		return "ok"
	}
}

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in reports and journal events.
	Name string
	Kind Kind
	// Target is the good fraction the objective promises (0 < Target < 1).
	Target float64
	// Threshold is the latency bound for Kind == Latency.
	Threshold time.Duration
	// FastWindow / SlowWindow are the two burn-rate windows
	// (defaults 5m / 1h).
	FastWindow time.Duration
	SlowWindow time.Duration
	// PageBurn / WarnBurn are the burn-rate thresholds (defaults 14.4 / 3,
	// the SRE-workbook 5m/1h pair).
	PageBurn float64
	WarnBurn float64
}

// DefaultObjectives returns the serving tier's stock SLOs: 99.9%
// availability and 95% of successful requests under 500ms, on 5m/1h
// windows.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "availability", Kind: Availability, Target: 0.999},
		{Name: "latency", Kind: Latency, Target: 0.95, Threshold: 500 * time.Millisecond},
	}
}

// AggregateScope is the reserved scope aggregating every request the
// engine sees, never evicted by the scope LRU.
const AggregateScope = "all"

// EventSLOAlert is the journal event name for state transitions.
const EventSLOAlert = "slo_alert"

// AlertEvent is the journaled payload of one state transition.
type AlertEvent struct {
	Objective string  `json:"objective"`
	Scope     string  `json:"scope"`
	From      string  `json:"from"`
	To        string  `json:"to"`
	FastBurn  float64 `json:"fast_burn"`
	SlowBurn  float64 `json:"slow_burn"`
}

// Config parameterizes an Engine.
type Config struct {
	// Objectives to evaluate; nil means DefaultObjectives.
	Objectives []Objective
	// MaxScopes bounds non-aggregate scope cardinality (default 8);
	// beyond it the least-recently-observed scope is evicted.
	MaxScopes int
	// Journal, when non-nil, receives EventSLOAlert entries on every
	// state transition (a nil obs.Journal is also safe: Record no-ops).
	Journal *obs.Journal
	// OnTransition, when non-nil, observes every state transition after
	// it is journaled. Called outside the engine lock.
	OnTransition func(objective, scope string, from, to State)
	// Now is the clock (test hook); nil means time.Now.
	Now func() time.Time
}

// numBuckets is how many sliding buckets cover an objective's slow
// window; the fast window reads a suffix of the same ring.
const numBuckets = 60

// bucket is one time slice of (good, total) counts.
type bucket struct {
	idx         int64 // absolute bucket index; a mismatched slot is stale
	good, total uint64
}

// objWindow is one (objective, scope) sliding ring plus its alert state.
type objWindow struct {
	buckets [numBuckets]bucket
	state   State
}

// scopeState is one scope's windows across every objective.
type scopeState struct {
	touched time.Time
	windows []objWindow
}

// Engine evaluates objectives over scoped sliding windows.
type Engine struct {
	objectives []Objective
	bucketDur  []time.Duration // per objective: SlowWindow / numBuckets
	maxScopes  int
	journal    *obs.Journal
	onTrans    func(objective, scope string, from, to State)
	now        func() time.Time
	evalEvery  time.Duration

	mu       sync.Mutex
	scopes   map[string]*scopeState
	lastEval time.Time
}

// transition is one pending state-change notification, emitted after the
// engine lock is released.
type transition struct {
	objective, scope string
	from, to         State
	fast, slow       float64
}

// New builds an engine; a zero Config gets the default objectives.
func New(cfg Config) *Engine {
	objectives := cfg.Objectives
	if len(objectives) == 0 {
		objectives = DefaultObjectives()
	}
	e := &Engine{
		objectives: make([]Objective, len(objectives)),
		bucketDur:  make([]time.Duration, len(objectives)),
		maxScopes:  cfg.MaxScopes,
		journal:    cfg.Journal,
		onTrans:    cfg.OnTransition,
		now:        cfg.Now,
		scopes:     map[string]*scopeState{},
	}
	if e.maxScopes < 1 {
		e.maxScopes = 8
	}
	if e.now == nil {
		e.now = time.Now
	}
	minFast := time.Duration(0)
	for i, o := range objectives {
		if o.Target <= 0 || o.Target >= 1 {
			o.Target = 0.999
		}
		if o.FastWindow <= 0 {
			o.FastWindow = 5 * time.Minute
		}
		if o.SlowWindow < o.FastWindow {
			o.SlowWindow = 12 * o.FastWindow
		}
		if o.PageBurn <= 0 {
			o.PageBurn = 14.4
		}
		if o.WarnBurn <= 0 || o.WarnBurn > o.PageBurn {
			o.WarnBurn = o.PageBurn / 4.8
		}
		if o.Kind == Latency && o.Threshold <= 0 {
			o.Threshold = 500 * time.Millisecond
		}
		if o.Name == "" {
			o.Name = fmt.Sprintf("%s-%d", o.Kind, i)
		}
		e.objectives[i] = o
		e.bucketDur[i] = o.SlowWindow / numBuckets
		if minFast == 0 || o.FastWindow < minFast {
			minFast = o.FastWindow
		}
	}
	// Lazy evaluation cadence: often enough that a page or a de-page is
	// never more than a fraction of the fastest window late, cheap enough
	// to ride the observe path.
	e.evalEvery = minFast / 8
	if e.evalEvery <= 0 {
		e.evalEvery = time.Second
	}
	return e
}

// Objectives returns the engine's resolved objectives.
func (e *Engine) Objectives() []Objective {
	out := make([]Objective, len(e.objectives))
	copy(out, e.objectives)
	return out
}

// ObserveRequest feeds one completed request into every objective under
// the given scope (and only that scope — callers that also want the
// "all" aggregate feed it explicitly, so per-forward and end-to-end
// feeds cannot double-count each other). Nil-receiver safe.
func (e *Engine) ObserveRequest(scope string, code int, d time.Duration) {
	if e == nil {
		return
	}
	if scope == "" {
		scope = AggregateScope
	}
	now := e.now()
	e.mu.Lock()
	st := e.scopeLocked(scope, now)
	for i, o := range e.objectives {
		if o.Kind == Latency && code >= 500 {
			continue
		}
		good := code < 500
		if o.Kind == Latency {
			good = d <= o.Threshold
		}
		b := &st.windows[i].buckets[int(now.UnixNano()/int64(e.bucketDur[i]))%numBuckets]
		if idx := now.UnixNano() / int64(e.bucketDur[i]); b.idx != idx {
			b.idx, b.good, b.total = idx, 0, 0
		}
		b.total++
		if good {
			b.good++
		}
	}
	var pending []transition
	if now.Sub(e.lastEval) >= e.evalEvery {
		pending = e.evaluateLocked(now)
	}
	e.mu.Unlock()
	e.emit(pending)
}

// scopeLocked resolves (or creates) a scope, touching it for the LRU and
// evicting the stalest scope past MaxScopes. The aggregate scope never
// counts against the bound and is never evicted.
func (e *Engine) scopeLocked(scope string, now time.Time) *scopeState {
	st, ok := e.scopes[scope]
	if !ok {
		st = &scopeState{windows: make([]objWindow, len(e.objectives))}
		e.scopes[scope] = st
		n := len(e.scopes)
		if _, hasAgg := e.scopes[AggregateScope]; hasAgg {
			n--
		}
		if n > e.maxScopes {
			oldest, oldestAt := "", now
			for name, s := range e.scopes {
				if name == AggregateScope || name == scope {
					continue
				}
				if s.touched.Before(oldestAt) {
					oldest, oldestAt = name, s.touched
				}
			}
			if oldest != "" {
				delete(e.scopes, oldest)
			}
		}
	}
	st.touched = now
	return st
}

// EvictScope drops one scope's windows and alert state — the model-reload
// hook: a retired version's verdicts should not linger on /debug/slo.
// Nil-receiver safe; evicting the aggregate or an unknown scope is a
// no-op.
func (e *Engine) EvictScope(scope string) {
	if e == nil || scope == AggregateScope {
		return
	}
	e.mu.Lock()
	delete(e.scopes, scope)
	e.mu.Unlock()
}

// windowRates sums the ring's live buckets over the trailing window.
func windowRates(w *objWindow, now time.Time, bucketDur, window time.Duration) (good, total uint64) {
	nowIdx := now.UnixNano() / int64(bucketDur)
	span := int64(window / bucketDur)
	if span < 1 {
		span = 1
	}
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.idx == 0 && b.total == 0 {
			continue
		}
		if b.idx > nowIdx || b.idx <= nowIdx-span {
			continue
		}
		good += b.good
		total += b.total
	}
	return good, total
}

// burn converts (good, total) under a target into a burn rate.
func burn(good, total uint64, target float64) (errRate, burnRate float64) {
	if total == 0 {
		return 0, 0
	}
	errRate = 1 - float64(good)/float64(total)
	return errRate, errRate / (1 - target)
}

// evaluateLocked re-derives every (objective, scope) state, returning the
// transitions to emit after unlock.
func (e *Engine) evaluateLocked(now time.Time) []transition {
	e.lastEval = now
	var pending []transition
	for scope, st := range e.scopes {
		for i := range e.objectives {
			o := &e.objectives[i]
			w := &st.windows[i]
			fg, ft := windowRates(w, now, e.bucketDur[i], o.FastWindow)
			sg, stot := windowRates(w, now, e.bucketDur[i], o.SlowWindow)
			_, fastBurn := burn(fg, ft, o.Target)
			_, slowBurn := burn(sg, stot, o.Target)
			next := StateOK
			switch {
			case fastBurn >= o.PageBurn && slowBurn >= o.PageBurn:
				next = StatePage
			case fastBurn >= o.WarnBurn && slowBurn >= o.WarnBurn:
				next = StateWarn
			}
			if next != w.state {
				pending = append(pending, transition{
					objective: o.Name, scope: scope,
					from: w.state, to: next,
					fast: fastBurn, slow: slowBurn,
				})
				w.state = next
			}
		}
	}
	return pending
}

// emit journals and relays transitions; called without the lock.
func (e *Engine) emit(pending []transition) {
	for _, tr := range pending {
		e.journal.Record(EventSLOAlert, AlertEvent{
			Objective: tr.objective, Scope: tr.scope,
			From: tr.from.String(), To: tr.to.String(),
			FastBurn: tr.fast, SlowBurn: tr.slow,
		})
		if e.onTrans != nil {
			e.onTrans(tr.objective, tr.scope, tr.from, tr.to)
		}
	}
}

// Verdict is one (objective, scope) row of a Report.
type Verdict struct {
	Objective string  `json:"objective"`
	Kind      string  `json:"kind"`
	Scope     string  `json:"scope"`
	State     string  `json:"state"`
	Target    float64 `json:"target"`
	FastBurn  float64 `json:"fast_burn"`
	SlowBurn  float64 `json:"slow_burn"`
	FastRate  float64 `json:"fast_error_rate"`
	SlowRate  float64 `json:"slow_error_rate"`
	SlowGood  uint64  `json:"slow_good"`
	SlowTotal uint64  `json:"slow_total"`
}

// Report is the full /debug/slo body.
type Report struct {
	GeneratedAt time.Time `json:"generated_at"`
	Worst       string    `json:"worst"`
	Verdicts    []Verdict `json:"verdicts"`
}

// Report forces an evaluation (emitting any due transitions) and
// snapshots every verdict, the aggregate scope first. Nil-receiver safe.
func (e *Engine) Report() Report {
	if e == nil {
		return Report{Worst: StateOK.String()}
	}
	now := e.now()
	e.mu.Lock()
	pending := e.evaluateLocked(now)
	rep := Report{GeneratedAt: now.UTC()}
	worst := StateOK
	for scope, st := range e.scopes {
		for i := range e.objectives {
			o := &e.objectives[i]
			w := &st.windows[i]
			fg, ft := windowRates(w, now, e.bucketDur[i], o.FastWindow)
			sg, stot := windowRates(w, now, e.bucketDur[i], o.SlowWindow)
			fr, fb := burn(fg, ft, o.Target)
			sr, sb := burn(sg, stot, o.Target)
			rep.Verdicts = append(rep.Verdicts, Verdict{
				Objective: o.Name, Kind: o.Kind.String(), Scope: scope,
				State: w.state.String(), Target: o.Target,
				FastBurn: fb, SlowBurn: sb, FastRate: fr, SlowRate: sr,
				SlowGood: sg, SlowTotal: stot,
			})
			if w.state > worst {
				worst = w.state
			}
		}
	}
	e.mu.Unlock()
	e.emit(pending)
	sort.Slice(rep.Verdicts, func(i, j int) bool {
		a, b := rep.Verdicts[i], rep.Verdicts[j]
		if (a.Scope == AggregateScope) != (b.Scope == AggregateScope) {
			return a.Scope == AggregateScope
		}
		if a.Scope != b.Scope {
			return a.Scope < b.Scope
		}
		return a.Objective < b.Objective
	})
	rep.Worst = worst.String()
	return rep
}

// Worst forces an evaluation and returns the worst current state across
// every (objective, scope) — the /healthz degraded signal. Nil-receiver
// safe (StateOK).
func (e *Engine) Worst() State {
	if e == nil {
		return StateOK
	}
	now := e.now()
	e.mu.Lock()
	pending := e.evaluateLocked(now)
	worst := StateOK
	for _, st := range e.scopes {
		for i := range st.windows {
			if st.windows[i].state > worst {
				worst = st.windows[i].state
			}
		}
	}
	e.mu.Unlock()
	e.emit(pending)
	return worst
}

// Handler serves the report: JSON by default, a human-readable table
// with ?format=text.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rep := e.Report()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, rep.Text())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
}

// Text renders the report as an aligned operator-facing table. The
// scope column sizes to its widest value (replica scopes are full base
// URLs); ERR/TOTAL is the slow window's bad-request count over its
// traffic.
func (rep Report) Text() string {
	scopeW := len("SCOPE")
	for _, v := range rep.Verdicts {
		if len(v.Scope) > scopeW {
			scopeW = len(v.Scope)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SLO report @ %s — worst: %s\n", rep.GeneratedAt.Format(time.RFC3339), rep.Worst)
	fmt.Fprintf(&b, "%-14s %-14s %-*s %-5s %8s %10s %10s %12s\n",
		"OBJECTIVE", "KIND", scopeW, "SCOPE", "STATE", "TARGET", "FAST-BURN", "SLOW-BURN", "ERR/TOTAL")
	for _, v := range rep.Verdicts {
		fmt.Fprintf(&b, "%-14s %-14s %-*s %-5s %7.3f%% %10.2f %10.2f %9d/%d\n",
			v.Objective, v.Kind, scopeW, v.Scope, v.State, v.Target*100, v.FastBurn, v.SlowBurn,
			v.SlowTotal-v.SlowGood, v.SlowTotal)
	}
	return b.String()
}

// Run evaluates on a timer until ctx ends — the path that journals a
// transition even when traffic (and with it the lazy observe-time
// evaluation) has stopped entirely. interval <= 0 uses the engine's lazy
// cadence.
func (e *Engine) Run(ctx context.Context, interval time.Duration) {
	if e == nil {
		return
	}
	if interval <= 0 {
		interval = e.evalEvery
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			now := e.now()
			e.mu.Lock()
			pending := e.evaluateLocked(now)
			e.mu.Unlock()
			e.emit(pending)
		}
	}
}
