package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func newTestProfiler(t *testing.T, keep int) *Profiler {
	t.Helper()
	p, err := StartProfiler(ProfilerConfig{
		Dir:         t.TempDir(),
		Interval:    time.Hour, // captures driven explicitly
		CPUDuration: 10 * time.Millisecond,
		Keep:        keep,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestProfilerRingBoundedAndIndexed(t *testing.T) {
	p := newTestProfiler(t, 2)
	for i := 0; i < 4; i++ {
		if err := p.CaptureNow(context.Background()); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
	}
	idx := p.Index()
	kinds := map[string]int{}
	for _, e := range idx {
		kinds[e.Kind]++
		if e.Bytes <= 0 {
			t.Fatalf("empty profile %s", e.Name)
		}
	}
	if kinds["cpu"] != 2 || kinds["heap"] != 2 {
		t.Fatalf("ring not pruned to keep=2: %+v", idx)
	}
	// Newest first, and the newest sequences survived.
	if len(idx) == 0 || idx[0].Seq != 3 {
		t.Fatalf("index not newest-first: %+v", idx)
	}
	// On-disk files match the index exactly.
	des, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != len(idx) {
		t.Fatalf("disk has %d files, index %d", len(des), len(idx))
	}
}

func TestProfilerHandler(t *testing.T) {
	p := newTestProfiler(t, 4)
	if err := p.CaptureNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/profiles", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("index status %d", rec.Code)
	}
	var body struct {
		Profiles []ProfileInfo `json:"profiles"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Profiles) != 2 {
		t.Fatalf("index has %d entries, want cpu+heap", len(body.Profiles))
	}
	// Fetch a real profile by name.
	rec = httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/profiles?file="+body.Profiles[0].Name, nil))
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("profile fetch: status %d, %d bytes", rec.Code, rec.Body.Len())
	}
	// Path traversal and junk names are rejected before touching the fs.
	for _, evil := range []string{"../registry.go", "cpu-1.pprof/../../x", "..%2fsecret", "heap.pprof"} {
		rec = httptest.NewRecorder()
		p.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/profiles?file="+evil, nil))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("hostile name %q served status %d", evil, rec.Code)
		}
	}
}

func TestProfilerResumesSequence(t *testing.T) {
	dir := t.TempDir()
	cfg := ProfilerConfig{Dir: dir, Interval: time.Hour, CPUDuration: 10 * time.Millisecond, Keep: 8}
	p1, err := StartProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.CaptureNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	p1.Close()
	p2, err := StartProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if err := p2.CaptureNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cpu-1.pprof")); err != nil {
		t.Fatalf("restart did not resume the sequence: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cpu-0.pprof")); err != nil {
		t.Fatalf("restart overwrote the prior ring: %v", err)
	}
}
