package obs

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Debug endpoints. DebugMux bundles the observability surface one mux:
//
//	GET /metrics               Prometheus text exposition of reg
//	GET /debug/traces[?id=..]  recent trace ring / one span tree
//	GET /debug/pprof/...       net/http/pprof (profile, heap, goroutine, …)
//
// The serving binary mounts these on its main listener; the train /
// finetune / experiments CLIs start an opt-in sidecar listener with
// StartDebugServer(-debug-addr), so a long offline run can be profiled
// and watched without a serving stack around it.

// RegisterDebug mounts /metrics, /debug/traces, and /debug/pprof/* on mux.
// A nil reg or tracer falls back to the process-wide default.
func RegisterDebug(mux *http.ServeMux, reg *Registry, tracer *Tracer) {
	if reg == nil {
		reg = Default()
	}
	if tracer == nil {
		tracer = DefaultTracer()
	}
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", tracer.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugMux returns a fresh mux carrying the full debug surface.
func DebugMux(reg *Registry, tracer *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	RegisterDebug(mux, reg, tracer)
	return mux
}

// DebugServer is a running sidecar debug listener.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartDebugServer binds addr and serves DebugMux in the background —
// the CLI -debug-addr sidecar. Empty addr returns (nil, nil) so callers
// can wire the flag unconditionally.
func StartDebugServer(addr string, reg *Registry, tracer *Tracer) (*DebugServer, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener %s: %w", addr, err)
	}
	srv := &http.Server{Handler: DebugMux(reg, tracer)}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The sidecar is best-effort; a failed Serve only loses debug
			// endpoints, never the run itself.
			_ = err
		}
	}()
	return &DebugServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound address (useful with ":0").
func (d *DebugServer) Addr() string {
	if d == nil || d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close shuts the sidecar down, waiting briefly for in-flight scrapes.
// Safe on a nil receiver (the empty-addr case).
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return d.srv.Shutdown(ctx)
}
