package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// finishTrace roots and immediately ends one trace on tr, returning its ID.
func finishTrace(tr *Tracer, name string) string {
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, name)
	id := sp.TraceID()
	sp.End()
	return id
}

// joinRemote finalizes a second record under an existing trace ID — the
// replica-side half of a router→replica hop.
func joinRemote(tr *Tracer, traceID, name string) {
	ctx := WithRemoteTraceID(context.Background(), tr, traceID)
	_, sp := StartSpan(ctx, name)
	sp.End()
}

// TestTraceRingEvictionBoundary fills the ring to capacity and asserts
// the oldest record is evicted exactly when the ring overflows — not one
// push early, not one late — and that eviction is remembered.
func TestTraceRingEvictionBoundary(t *testing.T) {
	const ringSz = 4
	tr := NewTracer(ringSz)
	ids := make([]string, 0, ringSz+1)
	for i := 0; i < ringSz; i++ {
		ids = append(ids, finishTrace(tr, fmt.Sprintf("op%d", i)))
	}
	// At capacity: everything still resolvable, nothing evicted.
	for _, id := range ids {
		if tr.Lookup(id) == nil {
			t.Fatalf("trace %s missing at capacity", id)
		}
		if tr.Evicted(id) {
			t.Fatalf("trace %s reported evicted while still in the ring", id)
		}
	}
	// One past capacity: exactly the oldest goes.
	ids = append(ids, finishTrace(tr, "overflow"))
	if tr.Lookup(ids[0]) != nil {
		t.Fatalf("oldest trace %s survived overflow", ids[0])
	}
	if !tr.Evicted(ids[0]) {
		t.Fatalf("oldest trace %s not remembered as evicted", ids[0])
	}
	for _, id := range ids[1:] {
		if tr.Lookup(id) == nil {
			t.Fatalf("survivor %s evicted early", id)
		}
		if tr.Evicted(id) {
			t.Fatalf("survivor %s misreported as evicted", id)
		}
	}
}

// TestTraceHandlerGoneVsNotFound drives /debug/traces?id= through the
// three terminal cases: live (200), evicted (410 + hint), unknown (404).
func TestTraceHandlerGoneVsNotFound(t *testing.T) {
	tr := NewTracer(2)
	old := finishTrace(tr, "old")
	live1 := finishTrace(tr, "live1")
	live2 := finishTrace(tr, "live2") // evicts old
	get := func(id string) (int, map[string]string) {
		rec := httptest.NewRecorder()
		tr.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces?id="+id, nil))
		var body map[string]string
		json.Unmarshal(rec.Body.Bytes(), &body)
		return rec.Code, body
	}
	if code, _ := get(live1); code != http.StatusOK {
		t.Fatalf("live trace %s: %d, want 200", live1, code)
	}
	if code, _ := get(live2); code != http.StatusOK {
		t.Fatalf("live trace %s: %d, want 200", live2, code)
	}
	code, body := get(old)
	if code != http.StatusGone {
		t.Fatalf("evicted trace %s: %d, want 410", old, code)
	}
	if !strings.Contains(body["hint"], "ring") {
		t.Fatalf("410 carries no eviction hint: %v", body)
	}
	if code, _ := get("ffffffffffffffff"); code != http.StatusNotFound {
		t.Fatalf("unknown trace: %d, want 404", code)
	}
}

// TestLookupMergedAfterPartialEviction builds a cross-hop trace (two
// records under one ID), evicts the older record, and asserts
// LookupMerged still resolves the survivor — a partially evicted trace
// degrades to the hops the ring kept, never to a 404.
func TestLookupMergedAfterPartialEviction(t *testing.T) {
	tr := NewTracer(2)
	id := finishTrace(tr, "router-hop")
	joinRemote(tr, id, "replica-hop") // ring: [router-hop, replica-hop] under one ID
	if got := len(tr.LookupAll(id)); got != 2 {
		t.Fatalf("cross-hop records = %d, want 2", got)
	}
	finishTrace(tr, "unrelated") // evicts the router-hop record
	recs := tr.LookupAll(id)
	if len(recs) != 1 || recs[0].Root != "replica-hop" {
		t.Fatalf("survivor records = %+v, want only replica-hop", recs)
	}
	merged := tr.LookupMerged(id)
	if merged == nil || merged.Root != "replica-hop" || len(merged.Spans) != 1 {
		t.Fatalf("LookupMerged after partial eviction = %+v", merged)
	}
	// The ID is both live (survivor) and in the eviction memory (dropped
	// hop); the handler must prefer the live record.
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces?id="+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("partially evicted trace served %d, want 200", rec.Code)
	}
}

// TestTraceRingEvictionRace hammers a tiny ring from 16 goroutines that
// finish traces, join remote records, and read every lookup surface
// concurrently — the -race guard for the eviction bookkeeping.
func TestTraceRingEvictionRace(t *testing.T) {
	tr := NewTracer(8)
	const goroutines = 16
	const iters = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := finishTrace(tr, fmt.Sprintf("g%d-i%d", g, i))
				if i%3 == 0 {
					joinRemote(tr, id, "hop")
				}
				tr.Lookup(id)
				tr.LookupMerged(id)
				tr.Evicted(id)
				if i%10 == 0 {
					tr.Recent(4)
					rec := httptest.NewRecorder()
					tr.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces?id="+id, nil))
					if rec.Code != http.StatusOK && rec.Code != http.StatusGone {
						t.Errorf("goroutine %d iter %d: status %d", g, i, rec.Code)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Everything old enough must have landed in the eviction memory, and
	// the memory itself stays bounded.
	tr.mu.Lock()
	evicted, order := len(tr.evicted), len(tr.evictedOrder)
	tr.mu.Unlock()
	if evicted == 0 {
		t.Fatal("no evictions recorded under churn")
	}
	if evicted > maxEvictedIDs || order > maxEvictedIDs {
		t.Fatalf("eviction memory unbounded: set=%d order=%d cap=%d", evicted, order, maxEvictedIDs)
	}
}
