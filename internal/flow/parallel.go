package flow

import (
	"fmt"
	"runtime"
	"sync"
)

// RunResult couples one parallel run's outputs.
type RunResult struct {
	Metrics *Metrics
	Trace   *Trace
	Err     error
}

// RunMany executes the flow for every (params, seed) pair concurrently —
// the "N recipe sets per iteration, bounded by available compute" model of
// Fig. 2 in the paper. Results are returned in input order. workers ≤ 0
// uses NumCPU.
func (r *Runner) RunMany(params []Params, seeds []int64, workers int) ([]RunResult, error) {
	if len(params) != len(seeds) {
		return nil, fmt.Errorf("flow: %d params but %d seeds", len(params), len(seeds))
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	out := make([]RunResult, len(params))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range params {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m, tr, err := r.Run(params[i], seeds[i])
			out[i] = RunResult{Metrics: m, Trace: tr, Err: err}
		}(i)
	}
	wg.Wait()
	return out, nil
}
