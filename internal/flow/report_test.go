package flow

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReport(t *testing.T) {
	r := NewRunner(testDesign(t, 0.9))
	m, tr, err := r.Run(DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, m, tr); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"flow report", "-- placement --", "-- clock tree --", "-- routing --",
		"-- timing --", "-- power --", "-- signoff --",
		"congestion", "WNS", "hold", "total",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every placement step appears.
	for i := 1; i <= DefaultParams().PlacementSteps; i++ {
		if !strings.Contains(s, "step "+string(rune('0'+i))) {
			t.Errorf("report missing placement step %d", i)
		}
	}
}
