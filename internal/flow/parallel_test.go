package flow

import (
	"testing"
)

func TestRunManyMatchesRun(t *testing.T) {
	r := NewRunner(testDesign(t, 0.95))
	params := []Params{DefaultParams(), DefaultParams(), DefaultParams()}
	params[1].TargetUtil = 0.6
	params[2].LeakageRecoveryEffort = 1
	seeds := []int64{1, 2, 3}
	results, err := r.RunMany(params, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("run %d: %v", i, res.Err)
		}
		m, _, err := r.Run(params[i], seeds[i])
		if err != nil {
			t.Fatal(err)
		}
		if *res.Metrics != *m {
			t.Fatalf("parallel run %d differs from sequential", i)
		}
	}
}

func TestRunManyLengthMismatch(t *testing.T) {
	r := NewRunner(testDesign(t, 1.0))
	if _, err := r.RunMany([]Params{DefaultParams()}, []int64{1, 2}, 0); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestRunManyPropagatesErrors(t *testing.T) {
	r := NewRunner(testDesign(t, 1.0))
	bad := DefaultParams()
	bad.TargetUtil = 5
	results, err := r.RunMany([]Params{DefaultParams(), bad}, []int64{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatal("good run should succeed")
	}
	if results[1].Err == nil {
		t.Fatal("bad params should fail in-slot")
	}
}
