package flow

import (
	"sync"

	"insightalign/internal/obs"
)

// Fault-tolerant execution metrics, bound lazily into the process-wide obs
// registry: every retry and classified failure of the Exec wrapper is
// visible on the same /metrics page as the serving and training families.
var (
	flowMetricsOnce sync.Once
	flowRetries     *obs.Counter // insightalign_flow_run_retries_total
	flowFailures    *obs.Counter // insightalign_flow_run_failures_total{kind}
)

func flowMetrics() {
	flowMetricsOnce.Do(func() {
		reg := obs.Default()
		flowRetries = reg.Counter("insightalign_flow_run_retries_total",
			"Flow run attempts retried by the Exec wrapper after a timeout or transient failure.")
		flowFailures = reg.Counter("insightalign_flow_run_failures_total",
			"Failed flow run attempts by error classification.", "kind")
	})
}
