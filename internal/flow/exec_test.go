package flow

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

// fakeExecutor scripts per-attempt outcomes for Exec tests without paying
// for real flow runs.
type fakeExecutor struct {
	calls int
	fn    func(ctx context.Context, attempt int) (*Metrics, *Trace, error)
}

func (f *fakeExecutor) RunContext(ctx context.Context, p Params, runSeed int64) (*Metrics, *Trace, error) {
	f.calls++
	return f.fn(ctx, f.calls)
}

// transientErr is a retryable error outside the faultinject package.
type transientErr struct{ msg string }

func (e *transientErr) Error() string   { return e.msg }
func (e *transientErr) Transient() bool { return true }

func goodMetrics() *Metrics { return &Metrics{TNSns: 1, PowerMW: 2, AreaUM2: 3, WirelengthUM: 4} }

// noSleep records requested backoffs without waiting.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestRunContextCancelledBetweenStages(t *testing.T) {
	r := NewRunner(testDesign(t, 1.0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := r.RunContext(ctx, DefaultParams(), 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !strings.Contains(err.Error(), StagePlacement) {
		t.Fatalf("cancellation error should name the checkpoint stage: %v", err)
	}
}

func TestRunContextStageHook(t *testing.T) {
	r := NewRunner(testDesign(t, 1.0))
	var stages []string
	var runIdx []uint64
	r.StageHook = func(_ context.Context, run uint64, stage string) error {
		stages = append(stages, stage)
		runIdx = append(runIdx, run)
		return nil
	}
	if _, _, err := r.RunContext(context.Background(), DefaultParams(), 1); err != nil {
		t.Fatal(err)
	}
	// The first checkpoints must fire in flow order (signoff only fires
	// when leakage recovery swapped cells).
	want := []string{StagePlacement, StageCTS, StageRoute, StageSTA, StagePower}
	for i, s := range want {
		if i >= len(stages) || stages[i] != s {
			t.Fatalf("checkpoint order %v, want prefix %v", stages, want)
		}
	}
	for _, ri := range runIdx {
		if ri != 0 {
			t.Fatalf("first run must have index 0, hook saw %d", ri)
		}
	}
	// Second run gets the next index.
	runIdx = runIdx[:0]
	if _, _, err := r.RunContext(context.Background(), DefaultParams(), 2); err != nil {
		t.Fatal(err)
	}
	if runIdx[0] != 1 {
		t.Fatalf("second run index = %d, want 1", runIdx[0])
	}
}

func TestRunContextStageHookErrorAborts(t *testing.T) {
	r := NewRunner(testDesign(t, 1.0))
	boom := errors.New("tool crashed")
	r.StageHook = func(_ context.Context, _ uint64, stage string) error {
		if stage == StageRoute {
			return boom
		}
		return nil
	}
	_, _, err := r.RunContext(context.Background(), DefaultParams(), 1)
	if !errors.Is(err, boom) {
		t.Fatalf("want hook error, got %v", err)
	}
	if !strings.Contains(err.Error(), StageRoute) {
		t.Fatalf("error should name the failing stage: %v", err)
	}
}

func TestRunContextMetricsHook(t *testing.T) {
	r := NewRunner(testDesign(t, 1.0))
	r.MetricsHook = func(_ uint64, m *Metrics) { m.PowerMW = math.NaN() }
	m, _, err := r.RunContext(context.Background(), DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m.PowerMW) {
		t.Fatal("metrics hook mutation lost")
	}
}

func TestRunEquivalentToRunContext(t *testing.T) {
	r := NewRunner(testDesign(t, 1.0))
	a, _, err := r.Run(DefaultParams(), 9)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := r.RunContext(context.Background(), DefaultParams(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("Run and RunContext diverge: %+v vs %+v", a, b)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrKind
	}{
		{context.DeadlineExceeded, KindTimeout},
		{fmt.Errorf("flow: cts: %w", context.DeadlineExceeded), KindTimeout},
		{context.Canceled, KindFatal},
		{&transientErr{"blip"}, KindTransient},
		{fmt.Errorf("wrapped: %w", &transientErr{"blip"}), KindTransient},
		{ErrCorruptQoR, KindTransient},
		{fmt.Errorf("%w: details", ErrCorruptQoR), KindTransient},
		{errors.New("validate: bad params"), KindFatal},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Fatalf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestExecRetriesTransientThenSucceeds(t *testing.T) {
	fe := &fakeExecutor{fn: func(_ context.Context, attempt int) (*Metrics, *Trace, error) {
		if attempt < 3 {
			return nil, nil, &transientErr{"blip"}
		}
		return goodMetrics(), &Trace{}, nil
	}}
	var delays []time.Duration
	opt := DefaultExecOptions()
	opt.Retries = 3
	opt.Sleep = noSleep(&delays)
	e := NewExec(fe, opt)
	m, _, err := e.RunContext(context.Background(), DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || fe.calls != 3 {
		t.Fatalf("want success on attempt 3, got %d calls", fe.calls)
	}
	if len(delays) != 2 {
		t.Fatalf("want 2 backoffs, got %v", delays)
	}
}

func TestExecExhaustsRetries(t *testing.T) {
	fe := &fakeExecutor{fn: func(_ context.Context, _ int) (*Metrics, *Trace, error) {
		return nil, nil, &transientErr{"always"}
	}}
	var delays []time.Duration
	opt := DefaultExecOptions()
	opt.Retries = 2
	opt.Sleep = noSleep(&delays)
	e := NewExec(fe, opt)
	_, _, err := e.RunContext(context.Background(), DefaultParams(), 1)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %v", err)
	}
	if re.Kind != KindTransient || re.Attempts != 3 {
		t.Fatalf("RunError = %+v, want transient after 3 attempts", re)
	}
	if fe.calls != 3 {
		t.Fatalf("calls = %d, want 3", fe.calls)
	}
}

func TestExecFatalNotRetried(t *testing.T) {
	fe := &fakeExecutor{fn: func(_ context.Context, _ int) (*Metrics, *Trace, error) {
		return nil, nil, errors.New("validate: TargetUtil out of range")
	}}
	opt := DefaultExecOptions()
	opt.Retries = 5
	var delays []time.Duration
	opt.Sleep = noSleep(&delays)
	e := NewExec(fe, opt)
	_, _, err := e.RunContext(context.Background(), DefaultParams(), 1)
	var re *RunError
	if !errors.As(err, &re) || re.Kind != KindFatal {
		t.Fatalf("want fatal RunError, got %v", err)
	}
	if fe.calls != 1 {
		t.Fatalf("fatal error retried: %d calls", fe.calls)
	}
}

func TestExecTimeoutRetriedUntilParentDone(t *testing.T) {
	// Each attempt hangs until its per-attempt deadline; the parent
	// context stays alive, so timeouts are retried and classified as such.
	fe := &fakeExecutor{fn: func(ctx context.Context, _ int) (*Metrics, *Trace, error) {
		<-ctx.Done()
		return nil, nil, fmt.Errorf("flow: placement: %w", ctx.Err())
	}}
	var delays []time.Duration
	opt := DefaultExecOptions()
	opt.Timeout = 5 * time.Millisecond
	opt.Retries = 2
	opt.Sleep = noSleep(&delays)
	e := NewExec(fe, opt)
	_, _, err := e.RunContext(context.Background(), DefaultParams(), 1)
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("want *RunError, got %v", err)
	}
	if re.Kind != KindTimeout || re.Attempts != 3 {
		t.Fatalf("RunError = %+v, want timeout after 3 attempts", re)
	}
}

func TestExecParentCancelStopsRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	fe := &fakeExecutor{fn: func(_ context.Context, _ int) (*Metrics, *Trace, error) {
		cancel() // parent dies during the first attempt
		return nil, nil, &transientErr{"blip"}
	}}
	opt := DefaultExecOptions()
	opt.Retries = 5
	e := NewExec(fe, opt)
	_, _, err := e.RunContext(ctx, DefaultParams(), 1)
	if err == nil || fe.calls != 1 {
		t.Fatalf("want single attempt after parent cancel, got %d calls, err %v", fe.calls, err)
	}
}

func TestExecCorruptQoRGuard(t *testing.T) {
	fe := &fakeExecutor{fn: func(_ context.Context, attempt int) (*Metrics, *Trace, error) {
		if attempt == 1 {
			m := goodMetrics()
			m.TNSns = math.NaN()
			return m, &Trace{}, nil
		}
		return goodMetrics(), &Trace{}, nil
	}}
	var delays []time.Duration
	opt := DefaultExecOptions()
	opt.Retries = 1
	opt.Sleep = noSleep(&delays)
	e := NewExec(fe, opt)
	m, _, err := e.RunContext(context.Background(), DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !MetricsFinite(m) || fe.calls != 2 {
		t.Fatalf("corrupt metrics not retried: calls %d, metrics %+v", fe.calls, m)
	}

	// All attempts corrupt: the terminal error is classified transient and
	// wraps ErrCorruptQoR.
	fe2 := &fakeExecutor{fn: func(_ context.Context, _ int) (*Metrics, *Trace, error) {
		m := goodMetrics()
		m.PowerMW = math.Inf(1)
		return m, &Trace{}, nil
	}}
	e2 := NewExec(fe2, opt)
	_, _, err = e2.RunContext(context.Background(), DefaultParams(), 1)
	if !errors.Is(err, ErrCorruptQoR) {
		t.Fatalf("want ErrCorruptQoR, got %v", err)
	}
}

func TestExecBackoffScheduleDeterministic(t *testing.T) {
	mk := func() []time.Duration {
		fe := &fakeExecutor{fn: func(_ context.Context, _ int) (*Metrics, *Trace, error) {
			return nil, nil, &transientErr{"always"}
		}}
		var delays []time.Duration
		opt := ExecOptions{Retries: 6, BackoffBase: 10 * time.Millisecond,
			BackoffMax: 80 * time.Millisecond, Jitter: 0.2, Seed: 42, Sleep: noSleep(&delays)}
		e := NewExec(fe, opt)
		e.RunContext(context.Background(), DefaultParams(), 1)
		return delays
	}
	a, b := mk(), mk()
	if len(a) != 6 {
		t.Fatalf("want 6 backoffs, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff %d differs across same-seed runs: %v vs %v", i, a[i], b[i])
		}
		lo := time.Duration(float64(10*time.Millisecond) * math.Pow(2, float64(i)) * 0.8)
		hi := time.Duration(float64(10*time.Millisecond) * math.Pow(2, float64(i)) * 1.2)
		if hi > time.Duration(float64(80*time.Millisecond)*1.2) {
			hi = time.Duration(float64(80*time.Millisecond) * 1.2)
		}
		if lo > 80*time.Millisecond {
			lo = time.Duration(float64(80*time.Millisecond) * 0.8)
		}
		if a[i] < lo || a[i] > hi {
			t.Fatalf("backoff %d = %v outside jittered envelope [%v, %v]", i, a[i], lo, hi)
		}
	}
}

func TestMetricsFinite(t *testing.T) {
	if !MetricsFinite(goodMetrics()) {
		t.Fatal("good metrics reported non-finite")
	}
	m := goodMetrics()
	m.HoldTNSns = math.Inf(-1)
	if MetricsFinite(m) {
		t.Fatal("infinite hold TNS not caught")
	}
}
