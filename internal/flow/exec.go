package flow

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// ErrKind is the typed classification of a failed flow run, driving the
// retry policy: timeouts and transient errors are retried, fatal errors
// (bad parameters, cancellation by the caller) are not.
type ErrKind uint8

const (
	// KindFatal errors are not retryable: invalid parameters, engine
	// invariant violations, caller cancellation.
	KindFatal ErrKind = iota
	// KindTransient errors are retryable tool hiccups (injected or real).
	KindTransient
	// KindTimeout means an attempt exceeded its per-run deadline.
	KindTimeout
)

// String names the kind for metric labels and messages.
func (k ErrKind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindTimeout:
		return "timeout"
	}
	return "fatal"
}

// ErrCorruptQoR marks a run whose metrics came back non-finite — garbage
// output from a nominally successful tool invocation. It is transient: the
// run is retried with the same seed (tool noise and injected corruption
// are keyed off the run, not the seed).
var ErrCorruptQoR = errors.New("flow: non-finite QoR metrics")

// transienter is the marker interface for retryable errors
// (faultinject.InjectedError implements it).
type transienter interface{ Transient() bool }

// Classify maps an error from a flow run to its retry class.
func Classify(err error) ErrKind {
	switch {
	case err == nil:
		return KindFatal // not meaningful; callers classify failures only
	case errors.Is(err, context.DeadlineExceeded):
		return KindTimeout
	case errors.Is(err, context.Canceled):
		return KindFatal
	case errors.Is(err, ErrCorruptQoR):
		return KindTransient
	}
	var tr transienter
	if errors.As(err, &tr) && tr.Transient() {
		return KindTransient
	}
	return KindFatal
}

// RunError is the terminal error of an Exec run: the classification of the
// last attempt plus how many attempts were spent.
type RunError struct {
	Kind     ErrKind
	Attempts int
	Err      error
}

// Error summarizes the failure.
func (e *RunError) Error() string {
	return fmt.Sprintf("flow: run failed (%s) after %d attempt(s): %v", e.Kind, e.Attempts, e.Err)
}

// Unwrap exposes the last attempt's error for errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// ExecOptions parameterize the fault-tolerant execution wrapper.
type ExecOptions struct {
	// Timeout bounds each attempt; 0 means no per-attempt deadline.
	Timeout time.Duration
	// Retries is how many times a timed-out or transient failure is
	// re-attempted after the first try.
	Retries int
	// BackoffBase is the first retry's backoff; each further retry
	// doubles it up to BackoffMax, then a uniform ±Jitter fraction is
	// applied to decorrelate concurrent retry storms.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// Jitter is the relative jitter fraction in [0, 1).
	Jitter float64
	// Seed drives the jitter; the same seed reproduces the same delays.
	Seed int64
	// Sleep, if non-nil, replaces the context-aware backoff sleep (tests
	// substitute a recording no-op).
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultExecOptions returns a practical retry policy: 3 retries on a
// 10 ms → 2 s exponential schedule with 20% jitter and no attempt deadline.
func DefaultExecOptions() ExecOptions {
	return ExecOptions{
		Retries:     3,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  2 * time.Second,
		Jitter:      0.2,
	}
}

// Exec wraps an Executor (normally a *Runner) with per-run deadlines,
// bounded retries with exponential backoff + jitter, typed error
// classification, and a non-finite QoR guard. It implements Executor, so
// callers swap it in wherever a Runner was used.
type Exec struct {
	inner Executor
	opt   ExecOptions

	mu  sync.Mutex
	rng *rand.Rand
}

// NewExec builds the wrapper; nil-safe defaults are applied for the
// backoff schedule.
func NewExec(inner Executor, opt ExecOptions) *Exec {
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = 10 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 2 * time.Second
	}
	if opt.Jitter < 0 || opt.Jitter >= 1 {
		opt.Jitter = 0.2
	}
	if opt.Retries < 0 {
		opt.Retries = 0
	}
	return &Exec{inner: inner, opt: opt, rng: rand.New(rand.NewSource(opt.Seed))}
}

// RunContext executes one flow run with the wrapper's fault policy. The
// returned error, when non-nil, is a *RunError carrying the typed kind of
// the final attempt.
func (e *Exec) RunContext(ctx context.Context, p Params, runSeed int64) (*Metrics, *Trace, error) {
	flowMetrics()
	var lastErr error
	var lastKind ErrKind
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, func() {}
		if e.opt.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, e.opt.Timeout)
		}
		m, tr, err := e.inner.RunContext(actx, p, runSeed)
		cancel()
		if err == nil && !MetricsFinite(m) {
			err = fmt.Errorf("%w: %+v", ErrCorruptQoR, *m)
		}
		if err == nil {
			return m, tr, nil
		}
		lastErr, lastKind = err, Classify(err)
		flowFailures.Inc(lastKind.String())
		// Attribute an attempt-deadline hit to the attempt, not the
		// caller: only stop on timeout when the parent context is done.
		if lastKind == KindFatal || attempt >= e.opt.Retries || ctx.Err() != nil {
			return nil, nil, &RunError{Kind: lastKind, Attempts: attempt + 1, Err: lastErr}
		}
		flowRetries.Inc()
		if err := e.sleep(ctx, e.backoff(attempt)); err != nil {
			return nil, nil, &RunError{Kind: KindFatal, Attempts: attempt + 1, Err: fmt.Errorf("flow: backoff: %w", err)}
		}
	}
}

// backoff computes the jittered exponential delay for retry #attempt.
func (e *Exec) backoff(attempt int) time.Duration {
	d := float64(e.opt.BackoffBase) * math.Pow(2, float64(attempt))
	if d > float64(e.opt.BackoffMax) {
		d = float64(e.opt.BackoffMax)
	}
	if e.opt.Jitter > 0 {
		e.mu.Lock()
		d *= 1 + e.opt.Jitter*(2*e.rng.Float64()-1)
		e.mu.Unlock()
	}
	return time.Duration(d)
}

// sleep waits d or until ctx is done.
func (e *Exec) sleep(ctx context.Context, d time.Duration) error {
	if e.opt.Sleep != nil {
		return e.opt.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// MetricsFinite reports whether every headline metric is a finite number —
// the guard that turns corrupted tool output into a retryable error
// instead of poisoning QoR scoring downstream.
func MetricsFinite(m *Metrics) bool {
	for _, v := range []float64{
		m.TNSns, m.WNSns, m.PowerMW, m.LeakageMW, m.AreaUM2,
		m.WirelengthUM, m.HoldTNSns, m.SkewPS,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
