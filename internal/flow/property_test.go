package flow_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"insightalign/internal/flow"
	"insightalign/internal/netlist"
	"insightalign/internal/recipe"
)

// Property: the flow produces finite, sane metrics for ANY recipe set —
// recipes may trade quality but must never crash or corrupt the metrics.
func TestFlowMetricsSaneForAnyRecipeSetProperty(t *testing.T) {
	nl, err := netlist.Generate(netlist.Spec{
		Name: "prop", Seed: 99, Gates: 250, SeqFraction: 0.3, Depth: 9,
		TechName: "N16", ClockTightness: 0.9, HVTFraction: 0.3, LVTFraction: 0.1,
		Locality: 0.4, FanoutSkew: 0.4, ShortPathFraction: 0.2, ActivityMean: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	runner := flow.NewRunner(nl)
	f := func(raw [recipe.N]bool, seed int16) bool {
		params := recipe.ApplySet(flow.DefaultParams(), recipe.Set(raw))
		m, tr, err := runner.Run(params, int64(seed))
		if err != nil {
			return false
		}
		for _, v := range []float64{m.TNSns, m.PowerMW, m.AreaUM2, m.WirelengthUM, m.HoldTNSns, m.SkewPS} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		if m.TNSns < 0 || m.PowerMW <= 0 || m.AreaUM2 <= 0 || m.HoldTNSns < 0 {
			return false
		}
		if m.DRCViolations < 0 || m.HoldFixCells < 0 {
			return false
		}
		if tr.Power.TotalMW <= 0 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
