package flow

import (
	"fmt"
	"io"
	"strings"
)

// WriteReport renders a tool-log-style summary of one flow run: per-stage
// health, final metrics, and the repair/recovery activity. This is the
// human-readable companion of the machine-readable Metrics/Trace pair.
func WriteReport(w io.Writer, m *Metrics, tr *Trace) error {
	nl := tr.Design
	st := nl.Stats()
	var b strings.Builder

	fmt.Fprintf(&b, "==== flow report: %s (%s, %.0f ps clock) ====\n",
		nl.Name, nl.Tech.Name, nl.ClockPeriodPS)
	fmt.Fprintf(&b, "design    : %d gates, %d registers, depth %d, avg fanout %.2f\n",
		st.Gates, st.Seqs, st.MaxLevel, st.AvgFanout)
	fmt.Fprintf(&b, "VT mix    : %.0f%% HVT / %.0f%% SVT / %.0f%% LVT\n",
		100*st.HVTFraction, 100*(1-st.HVTFraction-st.LVTFraction), 100*st.LVTFraction)

	fmt.Fprintf(&b, "\n-- placement --\n")
	for i, cs := range tr.Placement.StepCongestion {
		fmt.Fprintf(&b, "step %d    : congestion %-6s (max util %.2f, %.1f%% bins overflowed)\n",
			i+1, cs.Level(), cs.MaxUtil, 100*cs.OverflowFrac)
	}
	fmt.Fprintf(&b, "die       : %.1f x %.1f um, final avg util %.2f\n",
		tr.Placement.DieW, tr.Placement.DieH, tr.Placement.FinalUtil)

	fmt.Fprintf(&b, "\n-- clock tree --\n")
	fmt.Fprintf(&b, "buffers   : %d (%d skew padding), wirelength %.0f um\n",
		tr.CTS.Buffers, tr.CTS.PaddingBuffers, tr.CTS.WirelengthUM)
	fmt.Fprintf(&b, "skew      : %.2f ps, avg latency %.2f ps\n", tr.CTS.SkewPS, tr.CTS.AvgLatencyPS)

	fmt.Fprintf(&b, "\n-- routing --\n")
	fmt.Fprintf(&b, "wirelength: %.0f um, %d detoured nets\n", tr.Route.TotalWirelengthUM, tr.Route.DetouredNets)
	fmt.Fprintf(&b, "overflow  : total %d, worst edge %d, %.1f%% edges\n",
		tr.Route.OverflowTotal, tr.Route.MaxEdgeOverflow, 100*tr.Route.OverflowedEdgeFrac)
	fmt.Fprintf(&b, "DRC est.  : %d violations\n", tr.Route.DRCViolations)

	fmt.Fprintf(&b, "\n-- timing --\n")
	fmt.Fprintf(&b, "setup     : WNS %.4g ns, TNS %.4g ns, %d failing endpoints\n",
		m.WNSns, m.TNSns, tr.TimingFinal.FailingEndpoints)
	fmt.Fprintf(&b, "hold      : %d violations pre-repair, %d fix cells inserted, residual TNS %.4g ns\n",
		tr.TimingRepair.HoldViolationsBefore, m.HoldFixCells, m.HoldTNSns)
	fmt.Fprintf(&b, "repair    : %d cells upsized/VT-swapped, weak cells on critical paths %.1f%%\n",
		tr.TimingRepair.UpsizedCells, tr.TimingFinal.WeakCellPct)
	if tr.TimingFinal.HarmfulSkewPaths > 0 {
		fmt.Fprintf(&b, "clock     : %d critical paths with harmful skew\n", tr.TimingFinal.HarmfulSkewPaths)
	}

	fmt.Fprintf(&b, "\n-- power --\n")
	pw := tr.Power
	fmt.Fprintf(&b, "total     : %.4g mW (dyn %.4g, leak %.4g, seq %.4g, clk %.4g, holdfix %.4g)\n",
		pw.TotalMW, pw.DynamicMW, pw.LeakageMW, pw.SequentialMW, pw.ClockTreeMW, pw.HoldFixMW)
	fmt.Fprintf(&b, "recovery  : %d HVT swaps\n", tr.RecoverySwaps)
	if pw.LeakageFraction > 0.30 {
		fmt.Fprintf(&b, "note      : leakage dominant (%.0f%% of total)\n", 100*pw.LeakageFraction)
	}
	if pw.SeqFraction > 0.35 {
		fmt.Fprintf(&b, "note      : sequential power dominant (%.0f%% of total)\n", 100*pw.SeqFraction)
	}

	fmt.Fprintf(&b, "\n-- signoff --\n")
	fmt.Fprintf(&b, "area %.0f um2, wirelength %.0f um, skew %.1f ps, DRC %d\n",
		m.AreaUM2, m.WirelengthUM, m.SkewPS, m.DRCViolations)

	_, err := io.WriteString(w, b.String())
	return err
}
