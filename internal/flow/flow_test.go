package flow

import (
	"math"
	"testing"

	"insightalign/internal/netlist"
)

func testDesign(t *testing.T, tightness float64) *netlist.Netlist {
	t.Helper()
	nl, err := netlist.Generate(netlist.Spec{
		Name: "f", Seed: 61, Gates: 500, SeqFraction: 0.3, Depth: 11,
		TechName: "N16", ClockTightness: tightness, HVTFraction: 0.3, LVTFraction: 0.1,
		Locality: 0.4, FanoutSkew: 0.4, ShortPathFraction: 0.2, ActivityMean: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestRunBasic(t *testing.T) {
	r := NewRunner(testDesign(t, 1.0))
	m, tr, err := r.Run(DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.PowerMW <= 0 || math.IsNaN(m.PowerMW) {
		t.Fatalf("PowerMW = %g", m.PowerMW)
	}
	if m.TNSns < 0 && math.Abs(m.TNSns) > 1e6 {
		t.Fatalf("TNSns looks broken: %g", m.TNSns)
	}
	if m.AreaUM2 <= 0 || m.WirelengthUM <= 0 {
		t.Fatal("area / wirelength must be positive")
	}
	if tr.Placement == nil || tr.CTS == nil || tr.Route == nil || tr.TimingFinal == nil || tr.Power == nil {
		t.Fatal("trace incomplete")
	}
	if len(tr.Placement.StepCongestion) != DefaultParams().PlacementSteps {
		t.Fatal("trace missing placement step congestion")
	}
}

func TestRunDeterministic(t *testing.T) {
	r := NewRunner(testDesign(t, 1.0))
	a, _, err := r.Run(DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := r.Run(DefaultParams(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same (params, seed) differ: %+v vs %+v", a, b)
	}
}

func TestRunSeedVariesNoise(t *testing.T) {
	r := NewRunner(testDesign(t, 1.0))
	a, _, _ := r.Run(DefaultParams(), 1)
	b, _, _ := r.Run(DefaultParams(), 2)
	if a.PowerMW == b.PowerMW {
		t.Fatal("different seeds should differ at least by noise")
	}
}

func TestRunDoesNotMutateDesign(t *testing.T) {
	design := testDesign(t, 0.8) // tight: triggers upsizing
	drives := make([]int, len(design.Cells))
	vts := make([]netlist.VT, len(design.Cells))
	for i := range design.Cells {
		drives[i] = design.Cells[i].Drive
		vts[i] = design.Cells[i].VT
	}
	r := NewRunner(design)
	p := DefaultParams()
	p.SetupFixWeight = 1
	p.LeakageRecoveryEffort = 1
	if _, tr, err := r.Run(p, 3); err != nil {
		t.Fatal(err)
	} else if tr.TimingRepair.UpsizedCells == 0 && tr.RecoverySwaps == 0 {
		t.Log("warning: no mutation happened; test weaker than intended")
	}
	for i := range design.Cells {
		if design.Cells[i].Drive != drives[i] || design.Cells[i].VT != vts[i] {
			t.Fatalf("Run mutated the shared design at cell %d", i)
		}
	}
}

func TestRunInvalidParams(t *testing.T) {
	r := NewRunner(testDesign(t, 1.0))
	p := DefaultParams()
	p.TargetUtil = 2.0
	if _, _, err := r.Run(p, 1); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHighSetupEffortImprovesTNS(t *testing.T) {
	design := testDesign(t, 0.78)
	r := NewRunner(design)
	r.NoiseSigma = 0
	lazy := DefaultParams()
	lazy.SetupFixWeight = 0
	lazy.UpsizeAggressiveness = 0
	eager := DefaultParams()
	eager.SetupFixWeight = 1
	eager.UpsizeAggressiveness = 1
	eager.MaxOptPasses = 4
	a, _, err := r.Run(lazy, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := r.Run(eager, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.TNSns == 0 {
		t.Skip("design not timing-challenged at this seed")
	}
	if b.TNSns >= a.TNSns {
		t.Fatalf("setup effort should improve TNS: lazy=%g eager=%g", a.TNSns, b.TNSns)
	}
}

func TestLeakageRecoveryTradesPowerForTiming(t *testing.T) {
	design := testDesign(t, 1.5) // relaxed: recovery is nearly free
	r := NewRunner(design)
	r.NoiseSigma = 0
	off := DefaultParams()
	off.LeakageRecoveryEffort = 0
	on := DefaultParams()
	on.LeakageRecoveryEffort = 1
	a, _, err := r.Run(off, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, trB, err := r.Run(on, 5)
	if err != nil {
		t.Fatal(err)
	}
	if trB.RecoverySwaps == 0 {
		t.Skip("no recovery swaps at this configuration")
	}
	if b.LeakageMW >= a.LeakageMW {
		t.Fatalf("recovery should cut leakage: off=%g on=%g", a.LeakageMW, b.LeakageMW)
	}
}

func TestMetricsUnitsSane(t *testing.T) {
	// A relaxed design should meet timing with near-zero TNS; a tight one
	// should not. This pins the unit conventions (TNS as +magnitude, ns).
	rLoose := NewRunner(testDesign(t, 1.8))
	rTight := NewRunner(testDesign(t, 0.7))
	rLoose.NoiseSigma = 0
	rTight.NoiseSigma = 0
	a, _, _ := rLoose.Run(DefaultParams(), 1)
	b, _, _ := rTight.Run(DefaultParams(), 1)
	if a.TNSns > b.TNSns {
		t.Fatalf("relaxed TNS %g should not exceed tight TNS %g", a.TNSns, b.TNSns)
	}
	if b.TNSns < 0 {
		t.Fatalf("TNS magnitude convention violated: %g", b.TNSns)
	}
}
