// Package flow orchestrates the full physical design flow over the
// simulated engines — placement, clock tree synthesis, global routing,
// timing analysis with repair, leakage recovery, and power analysis — and
// collects both the final QoR metrics and the per-stage trace that the
// insight analyzers consume. It is the stand-in for the commercial P&R tool
// of the paper; recipes act by mutating Params.
package flow

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"

	"insightalign/internal/cts"
	"insightalign/internal/netlist"
	"insightalign/internal/placer"
	"insightalign/internal/power"
	"insightalign/internal/router"
	"insightalign/internal/sta"
)

// Params is the complete flow parameter set. Recipes (internal/recipe) are
// preconfigured bundles of overrides on these fields.
type Params struct {
	// Placement.
	TargetUtil         float64
	SpreadStrength     float64
	TimingDrivenWeight float64
	PlacementPerturb   float64
	PlaceCongestionEff float64
	PlacementSteps     int
	// Timing repair.
	SetupFixWeight       float64
	HoldFixWeight        float64
	UpsizeAggressiveness float64
	MaxOptPasses         int
	// Clock tree synthesis.
	CTSSkewTargetPS  float64
	CTSBufferDrive   int
	CTSMaxFanout     int
	CTSLatencyEffort float64
	UsefulSkew       bool
	// Routing.
	RouteIterations  int
	CongestionWeight float64
	DetourPenalty    float64
	TrackUtil        float64
	RouteExpansion   int
	// Power.
	LeakageRecoveryEffort float64
	RecoverySlackMarginPS float64
	ClockGatingEfficiency float64
}

// DefaultParams returns the tool's default flow configuration — the
// starting point every recipe perturbs.
func DefaultParams() Params {
	return Params{
		TargetUtil:            0.70,
		SpreadStrength:        0.6,
		TimingDrivenWeight:    0.5,
		PlacementPerturb:      0.02,
		PlaceCongestionEff:    0.5,
		PlacementSteps:        3,
		SetupFixWeight:        0.5,
		HoldFixWeight:         0.5,
		UpsizeAggressiveness:  0.3,
		MaxOptPasses:          2,
		CTSSkewTargetPS:       15,
		CTSBufferDrive:        2,
		CTSMaxFanout:          12,
		CTSLatencyEffort:      0.5,
		RouteIterations:       2,
		CongestionWeight:      1.0,
		DetourPenalty:         0.5,
		TrackUtil:             0.85,
		RouteExpansion:        2,
		LeakageRecoveryEffort: 0.5,
		RecoverySlackMarginPS: 30,
		ClockGatingEfficiency: 0.2,
	}
}

// engine option projections.

func (p Params) placerOptions(seed int64) placer.Options {
	return placer.Options{
		TargetUtil:       p.TargetUtil,
		Steps:            p.PlacementSteps,
		SpreadStrength:   p.SpreadStrength,
		TimingWeight:     p.TimingDrivenWeight,
		Perturbation:     p.PlacementPerturb,
		CongestionEffort: p.PlaceCongestionEff,
		Seed:             seed,
	}
}

func (p Params) ctsOptions() cts.Options {
	return cts.Options{
		SkewTargetPS:  p.CTSSkewTargetPS,
		BufferDrive:   p.CTSBufferDrive,
		MaxFanout:     p.CTSMaxFanout,
		LatencyEffort: p.CTSLatencyEffort,
		UsefulSkew:    p.UsefulSkew,
	}
}

func (p Params) routerOptions(seed int64) router.Options {
	return router.Options{
		Iterations:       p.RouteIterations,
		CongestionWeight: p.CongestionWeight,
		DetourPenalty:    p.DetourPenalty,
		TrackUtil:        p.TrackUtil,
		Expansion:        p.RouteExpansion,
		Seed:             seed,
	}
}

func (p Params) staOptions() sta.Options {
	return sta.Options{
		SetupFixWeight:       p.SetupFixWeight,
		HoldFixWeight:        p.HoldFixWeight,
		UpsizeAggressiveness: p.UpsizeAggressiveness,
		MaxOptPasses:         p.MaxOptPasses,
	}
}

func (p Params) powerOptions() power.Options {
	return power.Options{
		LeakageRecoveryEffort: p.LeakageRecoveryEffort,
		RecoverySlackMarginPS: p.RecoverySlackMarginPS,
		ClockGatingEfficiency: p.ClockGatingEfficiency,
	}
}

// Validate checks the full parameter set by delegating to every engine.
func (p Params) Validate() error {
	if err := p.placerOptions(0).Validate(); err != nil {
		return err
	}
	if err := p.ctsOptions().Validate(); err != nil {
		return err
	}
	if err := p.routerOptions(0).Validate(); err != nil {
		return err
	}
	if err := p.staOptions().Validate(); err != nil {
		return err
	}
	return p.powerOptions().Validate()
}

// Metrics are the signoff QoR numbers of one flow run. TNS and hold TNS
// are positive magnitudes (lower is better), matching Table IV units.
type Metrics struct {
	TNSns         float64
	WNSns         float64
	PowerMW       float64
	LeakageMW     float64
	AreaUM2       float64
	WirelengthUM  float64
	DRCViolations int
	HoldTNSns     float64
	HoldFixCells  int
	SkewPS        float64
}

// Trace is the complete per-stage observation record of a run — the raw
// material for design insights.
type Trace struct {
	Design    *netlist.Netlist // the flow-private, post-repair netlist copy
	Placement *placer.Result
	CTS       *cts.Result
	Route     *router.Result
	// TimingRepair is the analysis that drove setup/hold repair.
	TimingRepair *sta.Result
	// TimingFinal is the post-leakage-recovery signoff analysis.
	TimingFinal   *sta.Result
	Power         *power.Result
	RecoverySwaps int
}

// Stage names, in execution order — the cooperative checkpoints of
// RunContext and the sites a fault injector can strike.
const (
	StagePlacement = "placement"
	StageCTS       = "cts"
	StageRoute     = "route"
	StageSTA       = "sta"
	StagePower     = "power"
	StageSignoff   = "signoff"
)

// Stages lists the checkpoint names in execution order.
func Stages() []string {
	return []string{StagePlacement, StageCTS, StageRoute, StageSTA, StagePower, StageSignoff}
}

// Executor is anything that can execute one flow run under a context:
// the Runner itself, or the Exec retry/deadline wrapper around it.
type Executor interface {
	RunContext(ctx context.Context, p Params, runSeed int64) (*Metrics, *Trace, error)
}

// Runner executes flows against one immutable design.
type Runner struct {
	design *netlist.Netlist
	// NoiseSigma is the relative magnitude of run-to-run tool noise
	// applied to the headline metrics (default 1%).
	NoiseSigma float64
	// StageHook, if non-nil, runs at every cooperative checkpoint before
	// the named stage, with this runner's monotonically assigned run index.
	// A returned error aborts the run (wrapped with the stage name); a
	// blocking hook simulates a wedged tool and should watch ctx. This is
	// the fault-injection seam (faultinject.Injector.Apply matches it).
	StageHook func(ctx context.Context, run uint64, stage string) error
	// MetricsHook, if non-nil, observes (and may corrupt) the final
	// metrics of a run before they are returned — the seam through which
	// the fault injector produces garbage QoR for the Exec guard to catch.
	MetricsHook func(run uint64, m *Metrics)

	runs atomic.Uint64 // run-index allocator for the hooks
}

// NewRunner wraps a design for repeated flow evaluation. The design itself
// is never mutated; every run works on a private copy.
func NewRunner(design *netlist.Netlist) *Runner {
	return &Runner{design: design, NoiseSigma: 0.01}
}

// Design returns the wrapped design.
func (r *Runner) Design() *netlist.Netlist { return r.design }

// Run executes the flow with parameters p. runSeed individualizes
// stochastic stage decisions and measurement noise; the same (p, runSeed)
// always reproduces the same result. It is a thin wrapper over RunContext
// with no cancellation.
func (r *Runner) Run(p Params, runSeed int64) (*Metrics, *Trace, error) {
	return r.RunContext(context.Background(), p, runSeed)
}

// RunContext executes the flow with cooperative cancellation: between
// every pair of stages (placement, CTS, routing, STA, leakage recovery,
// signoff) the context is checked and the runner's StageHook (if any) is
// invoked, so a deadline or cancel aborts at the next checkpoint instead
// of running the flow to completion.
func (r *Runner) RunContext(ctx context.Context, p Params, runSeed int64) (*Metrics, *Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("flow: %w", err)
	}
	run := r.runs.Add(1) - 1
	check := func(stage string) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("flow: %s: %w", stage, err)
		}
		if r.StageHook != nil {
			if err := r.StageHook(ctx, run, stage); err != nil {
				return fmt.Errorf("flow: %s: %w", stage, err)
			}
		}
		return nil
	}
	// Private copy: repair transforms mutate Drive/VT. Connectivity
	// slices are shared (never mutated by any engine).
	nl := cloneForRun(r.design)

	if err := check(StagePlacement); err != nil {
		return nil, nil, err
	}
	pl, err := placer.Place(nl, p.placerOptions(runSeed))
	if err != nil {
		return nil, nil, fmt.Errorf("flow: placement: %w", err)
	}
	if err := check(StageCTS); err != nil {
		return nil, nil, err
	}
	clk, err := cts.Synthesize(nl, pl, p.ctsOptions())
	if err != nil {
		return nil, nil, fmt.Errorf("flow: cts: %w", err)
	}
	if err := check(StageRoute); err != nil {
		return nil, nil, err
	}
	rt, err := router.Route(nl, pl, p.routerOptions(runSeed+1))
	if err != nil {
		return nil, nil, fmt.Errorf("flow: routing: %w", err)
	}
	if err := check(StageSTA); err != nil {
		return nil, nil, err
	}
	timing, err := sta.Analyze(nl, rt, clk, p.staOptions())
	if err != nil {
		return nil, nil, fmt.Errorf("flow: sta: %w", err)
	}
	if err := check(StagePower); err != nil {
		return nil, nil, err
	}
	swaps, err := power.RecoverLeakage(nl, timing, p.powerOptions())
	if err != nil {
		return nil, nil, fmt.Errorf("flow: leakage recovery: %w", err)
	}
	timingFinal := timing
	if swaps > 0 {
		// Swapped cells got slower; sign off with a repair-free pass and
		// carry the hold-fix bookkeeping forward (the inserted cells stay).
		if err := check(StageSignoff); err != nil {
			return nil, nil, err
		}
		timingFinal, err = sta.Analyze(nl, rt, clk, sta.Options{})
		if err != nil {
			return nil, nil, fmt.Errorf("flow: signoff sta: %w", err)
		}
		timingFinal.HoldFixCells = timing.HoldFixCells
		timingFinal.HoldFixCapFF = timing.HoldFixCapFF
		timingFinal.HoldTNSPS = timing.HoldTNSPS
		timingFinal.HoldWNSPS = timing.HoldWNSPS
		timingFinal.UpsizedCells = timing.UpsizedCells
	}
	pw, err := power.Analyze(nl, rt, clk, timingFinal, p.powerOptions())
	if err != nil {
		return nil, nil, fmt.Errorf("flow: power: %w", err)
	}
	pw.RecoverySwaps = swaps

	m := &Metrics{
		TNSns:         timingFinal.TNSns(),
		WNSns:         timingFinal.WNSns(),
		PowerMW:       pw.TotalMW,
		LeakageMW:     pw.LeakageMW,
		AreaUM2:       nl.TotalArea(),
		WirelengthUM:  rt.TotalWirelengthUM,
		DRCViolations: rt.DRCViolations,
		HoldTNSns:     timingFinal.HoldTNSPS / 1000,
		HoldFixCells:  timingFinal.HoldFixCells,
		SkewPS:        clk.SkewPS,
	}
	// Tool noise: industrial flows are not perfectly reproducible across
	// machines/versions; datapoints carry small measurement noise.
	if r.NoiseSigma > 0 {
		nrng := rand.New(rand.NewSource(runSeed ^ 0x5DEECE66D))
		m.PowerMW *= 1 + nrng.NormFloat64()*r.NoiseSigma
		m.TNSns *= 1 + nrng.NormFloat64()*r.NoiseSigma
	}

	if r.MetricsHook != nil {
		r.MetricsHook(run, m)
	}

	tr := &Trace{
		Design:        nl,
		Placement:     pl,
		CTS:           clk,
		Route:         rt,
		TimingRepair:  timing,
		TimingFinal:   timingFinal,
		Power:         pw,
		RecoverySwaps: swaps,
	}
	return m, tr, nil
}

// cloneForRun copies the netlist with fresh Cell structs. Fanin/fanout
// slices are shared with the original — no engine mutates connectivity.
func cloneForRun(src *netlist.Netlist) *netlist.Netlist {
	dst := *src
	dst.Cells = append([]netlist.Cell(nil), src.Cells...)
	return &dst
}
