package sta

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"insightalign/internal/cts"
	"insightalign/internal/netlist"
	"insightalign/internal/router"
)

// PathStage is one cell along a timing path.
type PathStage struct {
	Cell        int
	Kind        netlist.CellKind
	Drive       int
	VT          netlist.VT
	CellDelayPS float64
	WireDelayPS float64
	ArrivalPS   float64 // arrival at this cell's output
}

// Path is one register-to-register (or port-bounded) timing path.
type Path struct {
	// Launch is the path's startpoint cell (DFF or input port).
	Launch int
	// Capture is the endpoint cell (DFF or output port).
	Capture int
	// Stages are the combinational cells in launch→capture order.
	Stages []PathStage
	// SlackPS is the endpoint setup slack of this path.
	SlackPS float64
	// DelayPS is the total data path delay.
	DelayPS float64
}

// String renders a tool-style path report.
func (p Path) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Startpoint: cell %d   Endpoint: cell %d\n", p.Launch, p.Capture)
	fmt.Fprintf(&b, "%-8s %-7s %-5s %-4s %10s %10s %10s\n",
		"cell", "kind", "drive", "vt", "cell(ps)", "wire(ps)", "arrive(ps)")
	for _, s := range p.Stages {
		fmt.Fprintf(&b, "%-8d %-7s %-5d %-4s %10.2f %10.2f %10.2f\n",
			s.Cell, s.Kind, s.Drive, s.VT, s.CellDelayPS, s.WireDelayPS, s.ArrivalPS)
	}
	fmt.Fprintf(&b, "path delay %.2f ps, slack %.2f ps\n", p.DelayPS, p.SlackPS)
	return b.String()
}

// ReportPaths extracts the n worst setup paths of the design at its current
// sizing state, tracing each from its endpoint back through the worst
// arrival fanin at every stage. It performs a fresh (repair-free) analysis.
func ReportPaths(nl *netlist.Netlist, rt *router.Result, clk *cts.Result, n int) ([]Path, error) {
	if n < 1 {
		return nil, fmt.Errorf("sta: need n >= 1 paths")
	}
	g := buildGraph(nl, rt, clk)
	arr, _ := g.propagate()
	tech := nl.Tech
	T := nl.ClockPeriodPS

	// Endpoint slacks.
	type endpoint struct {
		cell  int
		src   int
		slack float64
	}
	var eps []endpoint
	for _, ff := range nl.Seqs {
		src := nl.Cells[ff].Fanins[0]
		required := T + clk.LatencyPS[ff] - tech.SetupPS
		slack := required - (arr[src] + g.wireDelay[src])
		eps = append(eps, endpoint{ff, src, slack})
	}
	for _, po := range nl.Outputs {
		src := nl.Cells[po].Fanins[0]
		slack := T - (arr[src] + g.wireDelay[src])
		eps = append(eps, endpoint{po, src, slack})
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].slack < eps[j].slack })
	if n > len(eps) {
		n = len(eps)
	}

	paths := make([]Path, 0, n)
	for _, ep := range eps[:n] {
		p := Path{Capture: ep.cell, SlackPS: ep.slack}
		// Walk back through the worst-arrival fanin chain.
		cur := ep.src
		var rev []PathStage
		for {
			c := &nl.Cells[cur]
			if c.Kind.IsPort() || c.Kind.IsSequential() {
				p.Launch = cur
				break
			}
			rev = append(rev, PathStage{
				Cell: cur, Kind: c.Kind, Drive: c.Drive, VT: c.VT,
				CellDelayPS: g.cellDelay[cur], WireDelayPS: g.wireDelay[cur],
				ArrivalPS: arr[cur],
			})
			// Worst fanin by arrival + wire delay.
			worst, worstA := -1, math.Inf(-1)
			for _, f := range c.Fanins {
				if a := arr[f] + g.wireDelay[f]; a > worstA {
					worst, worstA = f, a
				}
			}
			if worst < 0 {
				p.Launch = cur
				break
			}
			cur = worst
		}
		for i := len(rev) - 1; i >= 0; i-- {
			p.Stages = append(p.Stages, rev[i])
		}
		launchBase := 0.0
		if nl.Cells[p.Launch].Kind.IsSequential() {
			launchBase = clk.LatencyPS[p.Launch] + tech.ClkQPS
		}
		p.DelayPS = arr[ep.src] + g.wireDelay[ep.src] - launchBase
		paths = append(paths, p)
	}
	return paths, nil
}

// PathHistogram bins endpoint slacks for a quick health view (the kind of
// summary designers scan before diving into individual paths).
type PathHistogram struct {
	BinEdgesPS []float64
	Counts     []int
	WorstPS    float64
	TotalNeg   int
}

// SlackHistogram computes an endpoint slack histogram with the given number
// of bins spanning [worst, best].
func SlackHistogram(nl *netlist.Netlist, rt *router.Result, clk *cts.Result, bins int) (*PathHistogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("sta: need bins >= 1")
	}
	g := buildGraph(nl, rt, clk)
	arr, _ := g.propagate()
	tech := nl.Tech
	T := nl.ClockPeriodPS
	var slacks []float64
	for _, ff := range nl.Seqs {
		src := nl.Cells[ff].Fanins[0]
		required := T + clk.LatencyPS[ff] - tech.SetupPS
		slacks = append(slacks, required-(arr[src]+g.wireDelay[src]))
	}
	for _, po := range nl.Outputs {
		src := nl.Cells[po].Fanins[0]
		slacks = append(slacks, T-(arr[src]+g.wireDelay[src]))
	}
	if len(slacks) == 0 {
		return &PathHistogram{BinEdgesPS: []float64{0, 0}, Counts: make([]int, bins)}, nil
	}
	lo, hi := slacks[0], slacks[0]
	for _, s := range slacks {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if hi == lo {
		hi = lo + 1
	}
	h := &PathHistogram{WorstPS: lo, Counts: make([]int, bins)}
	for i := 0; i <= bins; i++ {
		h.BinEdgesPS = append(h.BinEdgesPS, lo+(hi-lo)*float64(i)/float64(bins))
	}
	for _, s := range slacks {
		bin := int((s - lo) / (hi - lo) * float64(bins))
		if bin >= bins {
			bin = bins - 1
		}
		h.Counts[bin]++
		if s < 0 {
			h.TotalNeg++
		}
	}
	return h, nil
}

// HoldPath is one fast-corner hold check at a register endpoint.
type HoldPath struct {
	Launch     int
	Capture    int
	EarliestPS float64 // derated early data arrival
	RequiredPS float64 // derated capture latency + hold time
	SlackPS    float64
}

// ReportHoldPaths extracts the n worst hold endpoints at the current sizing
// state using the OCV derates of opt (zero values default as in Analyze).
func ReportHoldPaths(nl *netlist.Netlist, rt *router.Result, clk *cts.Result, opt Options, n int) ([]HoldPath, error) {
	if n < 1 {
		return nil, fmt.Errorf("sta: need n >= 1 hold paths")
	}
	g := buildGraph(nl, rt, clk)
	_, minArr := g.propagate()
	tech := nl.Tech
	dataDerate, clkDerate := opt.holdDerates()
	var out []HoldPath
	for _, ff := range nl.Seqs {
		src := nl.Cells[ff].Fanins[0]
		earliest := (minArr[src] + g.wireDelay[src]) * dataDerate
		required := clk.LatencyPS[ff]*clkDerate + tech.HoldPS
		launch := src
		// Walk back through the EARLIEST-arrival fanin chain to find the
		// launching register/port.
		for {
			c := &nl.Cells[launch]
			if c.Kind.IsPort() || c.Kind.IsSequential() {
				break
			}
			bestF, bestA := -1, math.Inf(1)
			for _, f := range c.Fanins {
				if a := minArr[f] + g.wireDelay[f]; a < bestA {
					bestF, bestA = f, a
				}
			}
			if bestF < 0 {
				break
			}
			launch = bestF
		}
		out = append(out, HoldPath{
			Launch: launch, Capture: ff,
			EarliestPS: earliest, RequiredPS: required, SlackPS: earliest - required,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SlackPS < out[j].SlackPS })
	if n > len(out) {
		n = len(out)
	}
	return out[:n], nil
}
