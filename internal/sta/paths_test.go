package sta

import (
	"math"
	"strings"
	"testing"
)

func TestReportPathsBasic(t *testing.T) {
	nl, rt, clk := build(t, 0.85, 0.1)
	paths, err := ReportPaths(nl, rt, clk, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("got %d paths, want 5", len(paths))
	}
	// Sorted worst-first.
	for i := 1; i < len(paths); i++ {
		if paths[i].SlackPS < paths[i-1].SlackPS {
			t.Fatal("paths not sorted by slack")
		}
	}
	for _, p := range paths {
		if len(p.Stages) == 0 {
			t.Fatal("path without stages")
		}
		// Launch is a register or input port; capture a register or output.
		lk := nl.Cells[p.Launch].Kind
		ck := nl.Cells[p.Capture].Kind
		if !lk.IsSequential() && !lk.IsPort() {
			t.Fatalf("bad launch kind %v", lk)
		}
		if !ck.IsSequential() && !ck.IsPort() {
			t.Fatalf("bad capture kind %v", ck)
		}
		// Arrival monotone along the path.
		for i := 1; i < len(p.Stages); i++ {
			if p.Stages[i].ArrivalPS < p.Stages[i-1].ArrivalPS {
				t.Fatal("arrival not monotone along path")
			}
		}
		if p.DelayPS <= 0 {
			t.Fatalf("non-positive path delay %g", p.DelayPS)
		}
	}
}

func TestWorstPathMatchesWNS(t *testing.T) {
	nl, rt, clk := build(t, 0.85, 0.1)
	res, err := Analyze(nl, rt, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := ReportPaths(nl, rt, clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(paths[0].SlackPS-res.WNSPS) > 1e-6 {
		t.Fatalf("worst path slack %g != WNS %g", paths[0].SlackPS, res.WNSPS)
	}
}

func TestPathString(t *testing.T) {
	nl, rt, clk := build(t, 0.85, 0.1)
	paths, _ := ReportPaths(nl, rt, clk, 1)
	s := paths[0].String()
	for _, want := range []string{"Startpoint", "Endpoint", "slack", "arrive(ps)"} {
		if !strings.Contains(s, want) {
			t.Errorf("path report missing %q", want)
		}
	}
}

func TestReportPathsValidation(t *testing.T) {
	nl, rt, clk := build(t, 1.0, 0.1)
	if _, err := ReportPaths(nl, rt, clk, 0); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestSlackHistogram(t *testing.T) {
	nl, rt, clk := build(t, 0.85, 0.1)
	h, err := SlackHistogram(nl, rt, clk, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != 10 || len(h.BinEdgesPS) != 11 {
		t.Fatalf("histogram shape wrong: %d counts, %d edges", len(h.Counts), len(h.BinEdgesPS))
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != len(nl.Seqs)+len(nl.Outputs) {
		t.Fatalf("histogram covers %d endpoints, want %d", total, len(nl.Seqs)+len(nl.Outputs))
	}
	// Worst bin edge equals worst slack.
	if h.BinEdgesPS[0] != h.WorstPS {
		t.Fatal("first edge should be the worst slack")
	}
	// Edges monotone.
	for i := 1; i < len(h.BinEdgesPS); i++ {
		if h.BinEdgesPS[i] <= h.BinEdgesPS[i-1] {
			t.Fatal("edges not increasing")
		}
	}
	res, _ := Analyze(nl, rt, clk, Options{})
	if (h.TotalNeg > 0) != (res.TNSPS > 0) {
		t.Fatal("negative-slack count inconsistent with TNS")
	}
	if _, err := SlackHistogram(nl, rt, clk, 0); err == nil {
		t.Fatal("expected error for zero bins")
	}
}

func TestReportHoldPaths(t *testing.T) {
	nl, rt, clk := build(t, 1.0, 0.4)
	hp, err := ReportHoldPaths(nl, rt, clk, Options{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hp) != 5 {
		t.Fatalf("got %d hold paths", len(hp))
	}
	for i := 1; i < len(hp); i++ {
		if hp[i].SlackPS < hp[i-1].SlackPS {
			t.Fatal("hold paths not sorted worst-first")
		}
	}
	for _, p := range hp {
		if !nl.Cells[p.Capture].Kind.IsSequential() {
			t.Fatal("hold capture must be a register")
		}
		lk := nl.Cells[p.Launch].Kind
		if !lk.IsSequential() && !lk.IsPort() {
			t.Fatalf("bad hold launch kind %v", lk)
		}
		if math.Abs(p.SlackPS-(p.EarliestPS-p.RequiredPS)) > 1e-9 {
			t.Fatal("hold slack arithmetic inconsistent")
		}
	}
	// Worst hold path must agree with Analyze's pre-repair hold WNS.
	res, err := Analyze(nl, rt, clk, Options{HoldFixWeight: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hp[0].SlackPS-res.HoldWNSPS) > 1e-6 && res.HoldViolationsBefore > 0 {
		t.Fatalf("worst hold path %g != hold WNS %g", hp[0].SlackPS, res.HoldWNSPS)
	}
	if _, err := ReportHoldPaths(nl, rt, clk, Options{}, 0); err == nil {
		t.Fatal("expected error for n=0")
	}
}
