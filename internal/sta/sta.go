// Package sta implements static timing analysis over the gate-level DAG:
// forward max/min arrival propagation, backward required-time propagation,
// setup and hold slack computation against the synthesized clock tree, plus
// the two timing-repair transforms that flow recipes steer — critical-path
// cell upsizing (setup) and delay-cell insertion (hold). Hold-fix instance
// counts, weak-cell percentages, and harmful-skew path counts are the
// timing insights of Table I in the paper.
package sta

import (
	"fmt"
	"math"
	"sort"

	"insightalign/internal/cts"
	"insightalign/internal/netlist"
	"insightalign/internal/router"
)

// Options are the timing-repair knobs exposed to flow recipes (Table II:
// "Balance weights of early hold- and setup-time fixing").
type Options struct {
	// SetupFixWeight in [0,1] scales how aggressively critical cells are
	// upsized / VT-swapped to recover setup slack.
	SetupFixWeight float64
	// HoldFixWeight in [0,1] scales how many hold violations are repaired
	// by delay-cell insertion.
	HoldFixWeight float64
	// UpsizeAggressiveness in [0,1] additionally allows LVT swaps on the
	// most critical cells (faster, leakier).
	UpsizeAggressiveness float64
	// MaxOptPasses bounds the setup-repair loop.
	MaxOptPasses int
	// HoldDataDerate and HoldClockDerate apply on-chip-variation margins
	// to hold analysis: data paths sped up, capture clock slowed down
	// (the fast-corner check of multi-corner signoff). Zero values default
	// to 0.9 / 1.05.
	HoldDataDerate  float64
	HoldClockDerate float64
}

// DefaultOptions returns a balanced flow default.
func DefaultOptions() Options {
	return Options{SetupFixWeight: 0.5, HoldFixWeight: 0.5, UpsizeAggressiveness: 0.3, MaxOptPasses: 2}
}

// Validate checks option ranges.
func (o Options) Validate() error {
	for name, v := range map[string]float64{
		"SetupFixWeight": o.SetupFixWeight, "HoldFixWeight": o.HoldFixWeight,
		"UpsizeAggressiveness": o.UpsizeAggressiveness,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("sta: %s %g out of [0,1]", name, v)
		}
	}
	if o.MaxOptPasses < 0 || o.MaxOptPasses > 10 {
		return fmt.Errorf("sta: MaxOptPasses %d out of [0,10]", o.MaxOptPasses)
	}
	if o.HoldDataDerate != 0 && (o.HoldDataDerate < 0.5 || o.HoldDataDerate > 1) {
		return fmt.Errorf("sta: HoldDataDerate %g out of [0.5,1]", o.HoldDataDerate)
	}
	if o.HoldClockDerate != 0 && (o.HoldClockDerate < 1 || o.HoldClockDerate > 1.5) {
		return fmt.Errorf("sta: HoldClockDerate %g out of [1,1.5]", o.HoldClockDerate)
	}
	return nil
}

// holdDerates returns the effective OCV margins.
func (o Options) holdDerates() (data, clk float64) {
	data, clk = o.HoldDataDerate, o.HoldClockDerate
	if data == 0 {
		data = 0.9
	}
	if clk == 0 {
		clk = 1.05
	}
	return data, clk
}

// Result is a completed timing analysis.
type Result struct {
	// WNSPS is the worst setup slack in ps (negative = violating).
	WNSPS float64
	// TNSPS is the total negative setup slack magnitude in ps (≥ 0).
	TNSPS float64
	// FailingEndpoints counts setup-violating endpoints.
	FailingEndpoints int
	// HoldWNSPS is the worst hold slack after fixing.
	HoldWNSPS float64
	// HoldTNSPS is the residual total negative hold slack magnitude.
	HoldTNSPS float64
	// HoldViolationsBefore counts hold-violating endpoints pre-repair.
	HoldViolationsBefore int
	// HoldFixCells is the number of inserted delay cells (the paper's
	// "Instance count from hold-time fixes" insight).
	HoldFixCells int
	// HoldFixCapFF is the added input capacitance of hold-fix cells,
	// consumed by the power engine.
	HoldFixCapFF float64
	// UpsizedCells counts setup-repair drive/VT changes.
	UpsizedCells int
	// CriticalCells lists cells with slack within 10% of WNS (or < 0).
	CriticalCells []int
	// WeakCellPct is the percentage of critical cells that are weak
	// (unit drive or HVT) — a Table I insight.
	WeakCellPct float64
	// HarmfulSkewPaths counts failing endpoints whose capture latency is
	// below the launch-side average (skew eats the setup margin) — the
	// "critical paths with harmful clock skew" insight.
	HarmfulSkewPaths int
	// MaxPathDelayPS is the longest register-to-register path delay.
	MaxPathDelayPS float64
	// SlackPS holds per-cell output setup slack (indexed by cell ID);
	// +Inf for cells with no timing constraint. Used by leakage recovery.
	SlackPS []float64
	// ArrivalPS holds per-cell max output arrival times.
	ArrivalPS []float64
}

// WNSns and TNSns return the headline metrics in nanoseconds, matching the
// units of Table IV in the paper (TNS reported as a positive magnitude).
func (r *Result) WNSns() float64 { return r.WNSPS / 1000 }

// TNSns returns total negative slack magnitude in ns (lower is better).
func (r *Result) TNSns() float64 { return r.TNSPS / 1000 }

// timingGraph caches per-cell delay model terms.
type timingGraph struct {
	nl    *netlist.Netlist
	rt    *router.Result
	clk   *cts.Result
	tech  netlist.Tech
	order []int // topological order of combinational cells (by level)

	cellDelay []float64 // per-cell delay with current sizing
	wireDelay []float64 // per-driver average sink wire delay
}

func buildGraph(nl *netlist.Netlist, rt *router.Result, clk *cts.Result) *timingGraph {
	g := &timingGraph{nl: nl, rt: rt, clk: clk, tech: nl.Tech}
	// Level-ordered combinational cells. Levels are generator-maintained
	// and validated, so a counting sort by level gives a topological order.
	maxLevel := 0
	for i := range nl.Cells {
		if nl.Cells[i].Level > maxLevel {
			maxLevel = nl.Cells[i].Level
		}
	}
	buckets := make([][]int, maxLevel+1)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Kind.IsPort() || c.Kind.IsSequential() {
			continue
		}
		buckets[c.Level] = append(buckets[c.Level], i)
	}
	for _, b := range buckets {
		g.order = append(g.order, b...)
	}
	g.cellDelay = make([]float64, len(nl.Cells))
	g.wireDelay = make([]float64, len(nl.Cells))
	g.refreshDelays()
	return g
}

// refreshDelays recomputes cell and wire delays from current cell sizing.
func (g *timingGraph) refreshDelays() {
	tech := g.tech
	for i := range g.nl.Cells {
		c := &g.nl.Cells[i]
		if c.Kind.IsPort() {
			continue
		}
		// Load: sink pins plus routed wire capacitance.
		loadFF := tech.WireCPerFFUM * g.rt.NetLengthUM[i]
		for _, s := range c.Fanouts {
			loadFF += g.nl.Cells[s].InputCap(tech)
		}
		if c.Kind.IsSequential() {
			// Clk→Q delay is modeled in the launch term; store the
			// output net's wire delay only.
			g.cellDelay[i] = 0
		} else {
			fo4 := 4 * tech.InputCapFF * float64(c.Drive)
			g.cellDelay[i] = c.IntrinsicDelay(tech) * (0.4 + 0.6*loadFF/fo4)
		}
		nSinks := len(c.Fanouts)
		if nSinks == 0 {
			g.wireDelay[i] = 0
			continue
		}
		avgLen := g.rt.NetLengthUM[i] / float64(nSinks)
		g.wireDelay[i] = 0.5*tech.WireRPerUM*tech.WireCPerFFUM*avgLen*avgLen*1e-3 + 0.01*avgLen
	}
}

// launchArrival returns the max/min output arrival of a level-0 source.
func (g *timingGraph) launchArrival(id int) (maxA, minA float64) {
	c := &g.nl.Cells[id]
	switch {
	case c.Kind.IsSequential():
		lat := g.clk.LatencyPS[id]
		return lat + g.tech.ClkQPS, lat + g.tech.ClkQPS
	case c.Kind == netlist.Input:
		return 0, 0
	default:
		return 0, 0
	}
}

// propagate computes max and min arrival for every cell output.
func (g *timingGraph) propagate() (arr, minArr []float64) {
	n := len(g.nl.Cells)
	arr = make([]float64, n)
	minArr = make([]float64, n)
	for i := range g.nl.Cells {
		c := &g.nl.Cells[i]
		if c.Kind == netlist.Input || c.Kind.IsSequential() {
			arr[i], minArr[i] = g.launchArrival(i)
		}
	}
	for _, id := range g.order {
		c := &g.nl.Cells[id]
		a := math.Inf(-1)
		m := math.Inf(1)
		for _, f := range c.Fanins {
			fa := arr[f] + g.wireDelay[f]
			fm := minArr[f] + g.wireDelay[f]
			if fa > a {
				a = fa
			}
			if fm < m {
				m = fm
			}
		}
		if len(c.Fanins) == 0 {
			a, m = 0, 0
		}
		arr[id] = a + g.cellDelay[id]
		minArr[id] = m + g.cellDelay[id]
	}
	return arr, minArr
}

// analyzeSetup computes per-cell required times and endpoint slacks.
func (g *timingGraph) analyzeSetup(arr []float64) (req []float64, res *Result) {
	nl, tech := g.nl, g.tech
	T := nl.ClockPeriodPS
	n := len(nl.Cells)
	req = make([]float64, n)
	for i := range req {
		req[i] = math.Inf(1)
	}
	res = &Result{WNSPS: math.Inf(1)}

	endpointSlack := func(src int, required float64) float64 {
		return required - (arr[src] + g.wireDelay[src])
	}

	avgLat := g.clk.AvgLatencyPS

	// Endpoint constraints seed the backward pass.
	for _, ff := range nl.Seqs {
		src := nl.Cells[ff].Fanins[0]
		required := T + g.clk.LatencyPS[ff] - tech.SetupPS
		s := endpointSlack(src, required)
		if r := required - g.wireDelay[src]; r < req[src] {
			req[src] = r
		}
		if s < res.WNSPS {
			res.WNSPS = s
		}
		if s < 0 {
			res.TNSPS += -s
			res.FailingEndpoints++
			if g.clk.LatencyPS[ff] < avgLat {
				res.HarmfulSkewPaths++
			}
		}
		if d := arr[src] + g.wireDelay[src] - (g.clk.LatencyPS[ff] + tech.ClkQPS); d > res.MaxPathDelayPS {
			res.MaxPathDelayPS = d
		}
	}
	for _, po := range nl.Outputs {
		src := nl.Cells[po].Fanins[0]
		required := T
		s := endpointSlack(src, required)
		if r := required - g.wireDelay[src]; r < req[src] {
			req[src] = r
		}
		if s < res.WNSPS {
			res.WNSPS = s
		}
		if s < 0 {
			res.TNSPS += -s
			res.FailingEndpoints++
		}
	}

	// Backward required-time propagation in reverse topological order.
	for i := len(g.order) - 1; i >= 0; i-- {
		id := g.order[i]
		c := &nl.Cells[id]
		for _, f := range c.Fanins {
			if r := req[id] - g.cellDelay[id] - g.wireDelay[f]; r < req[f] {
				req[f] = r
			}
		}
	}
	if math.IsInf(res.WNSPS, 1) {
		res.WNSPS = 0 // no endpoints
	}
	return req, res
}

// Analyze runs timing analysis with the configured repair transforms.
// It mutates cell sizing in nl (callers pass a flow-private copy).
func Analyze(nl *netlist.Netlist, rt *router.Result, clk *cts.Result, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	g := buildGraph(nl, rt, clk)
	arr, minArr := g.propagate()
	req, res := g.analyzeSetup(arr)

	// Setup repair: upsize the weakest cells on violating paths.
	passes := 0
	if opt.SetupFixWeight > 0 {
		passes = 1 + int(opt.SetupFixWeight*float64(opt.MaxOptPasses-1)+0.5)
	}
	for p := 0; p < passes && res.TNSPS > 0; p++ {
		changed := 0
		budget := int(opt.SetupFixWeight * float64(len(g.order)) * 0.08)
		for _, id := range g.order {
			if budget <= 0 {
				break
			}
			slack := req[id] - arr[id]
			if slack >= 0 {
				continue
			}
			c := &nl.Cells[id]
			if c.Drive < 4 {
				c.Drive *= 2
				changed++
				budget--
				continue
			}
			if opt.UpsizeAggressiveness > 0 && c.VT != netlist.LVT && slack < res.WNSPS*0.5 {
				c.VT = netlist.LVT
				changed++
				budget--
			}
		}
		if changed == 0 {
			break
		}
		upsized := res.UpsizedCells + changed
		g.refreshDelays()
		arr, minArr = g.propagate()
		req, res = g.analyzeSetup(arr)
		res.UpsizedCells = upsized
	}

	// Per-cell slack for downstream consumers (e.g. leakage recovery).
	res.SlackPS = make([]float64, len(nl.Cells))
	res.ArrivalPS = arr
	for i := range nl.Cells {
		res.SlackPS[i] = req[i] - arr[i]
	}

	// Critical-cell census and weak-cell percentage.
	thresh := res.WNSPS * 0.9
	if thresh > 0 {
		thresh = 0
	}
	weak := 0
	for _, id := range g.order {
		s := req[id] - arr[id]
		if s <= thresh+1e-9 {
			res.CriticalCells = append(res.CriticalCells, id)
			c := &nl.Cells[id]
			if c.Drive == 1 || c.VT == netlist.HVT {
				weak++
			}
		}
	}
	if len(res.CriticalCells) > 0 {
		res.WeakCellPct = 100 * float64(weak) / float64(len(res.CriticalCells))
	}

	// Hold analysis at register endpoints.
	tech := nl.Tech
	bufDelay := tech.GateDelayPS * netlist.Buf.DelayFactor()
	res.HoldWNSPS = math.Inf(1)
	type holdViol struct {
		amount float64
	}
	var viols []holdViol
	dataDerate, clkDerate := opt.holdDerates()
	for _, ff := range nl.Seqs {
		src := nl.Cells[ff].Fanins[0]
		// Fast-corner check: data early arrival derated down, capture
		// clock derated up (on-chip variation pessimism).
		earliest := (minArr[src] + g.wireDelay[src]) * dataDerate
		slack := earliest - (clk.LatencyPS[ff]*clkDerate + tech.HoldPS)
		if slack < res.HoldWNSPS {
			res.HoldWNSPS = slack
		}
		if slack < 0 {
			res.HoldViolationsBefore++
			viols = append(viols, holdViol{-slack})
		}
	}
	if math.IsInf(res.HoldWNSPS, 1) {
		res.HoldWNSPS = 0
	}
	// Hold repair: fix the largest violations first within the effort
	// budget; each fix inserts ceil(violation/bufDelay) delay cells.
	if len(viols) > 0 {
		sort.Slice(viols, func(i, j int) bool { return viols[i].amount > viols[j].amount })
		maxFixes := int(opt.HoldFixWeight*float64(len(viols)) + 0.5)
		fixed := 0
		worstResid := 0.0
		for i, v := range viols {
			if i < maxFixes {
				ncells := int(math.Ceil(v.amount / bufDelay))
				res.HoldFixCells += ncells
				res.HoldFixCapFF += float64(ncells) * tech.InputCapFF
				fixed++
				continue
			}
			res.HoldTNSPS += v.amount
			if v.amount > worstResid {
				worstResid = v.amount
			}
		}
		if fixed == len(viols) {
			res.HoldWNSPS = 0
		} else {
			res.HoldWNSPS = -worstResid
		}
	}
	return res, nil
}
