package sta

import (
	"math"
	"testing"

	"insightalign/internal/cts"
	"insightalign/internal/netlist"
	"insightalign/internal/placer"
	"insightalign/internal/router"
)

// build runs the upstream flow stages for a spec and returns everything
// Analyze needs. The netlist is fresh per call so tests can mutate freely.
func build(t *testing.T, tightness, shortFrac float64) (*netlist.Netlist, *router.Result, *cts.Result) {
	t.Helper()
	nl, err := netlist.Generate(netlist.Spec{
		Name: "s", Seed: 41, Gates: 600, SeqFraction: 0.3, Depth: 12,
		TechName: "N16", ClockTightness: tightness, HVTFraction: 0.3, LVTFraction: 0.1,
		Locality: 0.5, FanoutSkew: 0.3, ShortPathFraction: shortFrac,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := placer.Place(nl, placer.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	clk, err := cts.Synthesize(nl, pl, cts.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := router.Route(nl, pl, router.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return nl, rt, clk
}

func TestAnalyzeBasic(t *testing.T) {
	nl, rt, clk := build(t, 1.0, 0.1)
	res, err := Analyze(nl, rt, clk, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.WNSPS) || math.IsNaN(res.TNSPS) {
		t.Fatal("NaN timing results")
	}
	if res.TNSPS < 0 {
		t.Fatalf("TNS magnitude must be >= 0, got %g", res.TNSPS)
	}
	if res.MaxPathDelayPS <= 0 {
		t.Fatal("no positive path delay found")
	}
	if len(res.SlackPS) != len(nl.Cells) || len(res.ArrivalPS) != len(nl.Cells) {
		t.Fatal("per-cell arrays wrong length")
	}
}

func TestTightClockWorseTiming(t *testing.T) {
	nlT, rtT, clkT := build(t, 0.72, 0.1)
	nlL, rtL, clkL := build(t, 1.6, 0.1)
	opt := Options{} // no repair: observe raw timing
	a, err := Analyze(nlT, rtT, clkT, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(nlL, rtL, clkL, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.WNSPS >= b.WNSPS {
		t.Fatalf("tight clock should have worse WNS: tight=%g loose=%g", a.WNSPS, b.WNSPS)
	}
	if a.TNSPS <= b.TNSPS {
		t.Fatalf("tight clock should have worse TNS: tight=%g loose=%g", a.TNSPS, b.TNSPS)
	}
}

func TestSetupRepairImprovesTNS(t *testing.T) {
	nlA, rtA, clkA := build(t, 0.72, 0.1)
	nlB, rtB, clkB := build(t, 0.72, 0.1)
	raw, err := Analyze(nlA, rtA, clkA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Analyze(nlB, rtB, clkB, Options{SetupFixWeight: 1, UpsizeAggressiveness: 1, MaxOptPasses: 4})
	if err != nil {
		t.Fatal(err)
	}
	if raw.TNSPS == 0 {
		t.Skip("design meets timing without repair")
	}
	if fixed.UpsizedCells == 0 {
		t.Fatal("full-effort repair upsized nothing")
	}
	if fixed.TNSPS >= raw.TNSPS {
		t.Fatalf("repair should improve TNS: raw=%g fixed=%g", raw.TNSPS, fixed.TNSPS)
	}
}

func TestHoldFixing(t *testing.T) {
	nlA, rtA, clkA := build(t, 1.0, 0.45)
	raw, err := Analyze(nlA, rtA, clkA, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if raw.HoldViolationsBefore == 0 {
		t.Skip("no hold violations to fix in this configuration")
	}
	if raw.HoldTNSPS == 0 {
		t.Fatal("unfixed violations should leave residual hold TNS")
	}
	nlB, rtB, clkB := build(t, 1.0, 0.45)
	fixed, err := Analyze(nlB, rtB, clkB, Options{HoldFixWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.HoldFixCells == 0 {
		t.Fatal("full-effort hold fixing inserted no cells")
	}
	if fixed.HoldTNSPS != 0 {
		t.Fatalf("full-effort hold fixing left residual TNS %g", fixed.HoldTNSPS)
	}
	if fixed.HoldWNSPS != 0 {
		t.Fatalf("full-effort hold fixing left WNS %g", fixed.HoldWNSPS)
	}
	if fixed.HoldFixCapFF <= 0 {
		t.Fatal("hold fixes should add capacitance")
	}
}

func TestPartialHoldFixing(t *testing.T) {
	nl, rt, clk := build(t, 1.0, 0.45)
	res, err := Analyze(nl, rt, clk, Options{HoldFixWeight: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.HoldViolationsBefore < 2 {
		t.Skip("not enough violations")
	}
	if res.HoldFixCells == 0 {
		t.Fatal("half effort should fix something")
	}
	if res.HoldTNSPS == 0 {
		t.Fatal("half effort should leave residual violations")
	}
}

func TestWeakCellPctRange(t *testing.T) {
	nl, rt, clk := build(t, 0.72, 0.1)
	res, err := Analyze(nl, rt, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WeakCellPct < 0 || res.WeakCellPct > 100 {
		t.Fatalf("WeakCellPct %g out of [0,100]", res.WeakCellPct)
	}
	if len(res.CriticalCells) == 0 && res.TNSPS > 0 {
		t.Fatal("violating design must have critical cells")
	}
}

func TestSlackConsistency(t *testing.T) {
	nl, rt, clk := build(t, 0.9, 0.1)
	res, err := Analyze(nl, rt, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The minimum finite per-cell slack should be close to WNS (the
	// worst endpoint path runs through the worst cell).
	minSlack := math.Inf(1)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Kind.IsPort() || c.Kind.IsSequential() {
			continue
		}
		if res.SlackPS[i] < minSlack {
			minSlack = res.SlackPS[i]
		}
	}
	if math.Abs(minSlack-res.WNSPS) > math.Abs(res.WNSPS)*0.25+20 {
		t.Fatalf("min cell slack %g far from WNS %g", minSlack, res.WNSPS)
	}
}

func TestUnitConversions(t *testing.T) {
	r := &Result{WNSPS: -1500, TNSPS: 2500}
	if r.WNSns() != -1.5 || r.TNSns() != 2.5 {
		t.Fatalf("unit conversion wrong: %g %g", r.WNSns(), r.TNSns())
	}
}

func TestValidation(t *testing.T) {
	if err := (Options{SetupFixWeight: 2}).Validate(); err == nil {
		t.Fatal("expected error")
	}
	if err := (Options{MaxOptPasses: 99}).Validate(); err == nil {
		t.Fatal("expected error")
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministic(t *testing.T) {
	nlA, rtA, clkA := build(t, 0.9, 0.2)
	nlB, rtB, clkB := build(t, 0.9, 0.2)
	a, _ := Analyze(nlA, rtA, clkA, DefaultOptions())
	b, _ := Analyze(nlB, rtB, clkB, DefaultOptions())
	if a.WNSPS != b.WNSPS || a.TNSPS != b.TNSPS || a.HoldFixCells != b.HoldFixCells {
		t.Fatal("analysis not deterministic")
	}
}

func TestArrivalMonotoneAlongPaths(t *testing.T) {
	nl, rt, clk := build(t, 1.0, 0.1)
	res, err := Analyze(nl, rt, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range nl.Cells {
		c := &nl.Cells[i]
		if c.Kind.IsPort() || c.Kind.IsSequential() {
			continue
		}
		for _, f := range c.Fanins {
			fc := &nl.Cells[f]
			if fc.Kind.IsPort() || fc.Kind.IsSequential() {
				continue
			}
			if res.ArrivalPS[i] < res.ArrivalPS[f]-1e-9 {
				t.Fatalf("arrival not monotone: cell %d (%g) after fanin %d (%g)",
					i, res.ArrivalPS[i], f, res.ArrivalPS[f])
			}
		}
	}
}

func TestHoldDeratesMakeHoldHarder(t *testing.T) {
	// OCV derates (data sped up, clock slowed) must produce at least as
	// many hold violations as a derate-free analysis.
	nlA, rtA, clkA := build(t, 1.0, 0.35)
	nlB, rtB, clkB := build(t, 1.0, 0.35)
	neutral, err := Analyze(nlA, rtA, clkA, Options{HoldDataDerate: 1, HoldClockDerate: 1})
	if err != nil {
		t.Fatal(err)
	}
	derated, err := Analyze(nlB, rtB, clkB, Options{}) // defaults 0.9/1.05
	if err != nil {
		t.Fatal(err)
	}
	if derated.HoldViolationsBefore < neutral.HoldViolationsBefore {
		t.Fatalf("derated analysis found fewer violations: %d vs %d",
			derated.HoldViolationsBefore, neutral.HoldViolationsBefore)
	}
	if derated.HoldWNSPS > neutral.HoldWNSPS {
		t.Fatalf("derated hold WNS should be worse: %g vs %g", derated.HoldWNSPS, neutral.HoldWNSPS)
	}
}

func TestHoldDerateValidation(t *testing.T) {
	if err := (Options{HoldDataDerate: 0.2}).Validate(); err == nil {
		t.Fatal("expected error for extreme data derate")
	}
	if err := (Options{HoldClockDerate: 2}).Validate(); err == nil {
		t.Fatal("expected error for extreme clock derate")
	}
	if err := (Options{HoldDataDerate: 0.95, HoldClockDerate: 1.02}).Validate(); err != nil {
		t.Fatal(err)
	}
}
