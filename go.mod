module insightalign

go 1.22
