// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus microbenchmarks of the core computational
// kernels. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches use a reduced-scale dataset and training budget
// so one iteration completes in seconds; cmd/experiments runs the
// full-scale versions and writes the actual tables/series.
package insightalign_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"insightalign"
	"insightalign/internal/dataset"
	"insightalign/internal/experiments"
	"insightalign/internal/flow"
	"insightalign/internal/insight"
	"insightalign/internal/netlist"
)

// Shared fixtures, built once.
var (
	fixOnce sync.Once
	fixDS   *dataset.Dataset
	fixEnv  *experiments.Env
	fixT4   *experiments.Table4Result
	fixNL   *netlist.Netlist
	fixErr  error
)

func fixtures(b *testing.B) (*experiments.Env, *experiments.Table4Result) {
	b.Helper()
	fixOnce.Do(func() {
		opts := dataset.DefaultBuildOptions()
		opts.Scale = 0.05
		opts.PointsPerDesign = 12
		fixDS, fixErr = dataset.Build(opts)
		if fixErr != nil {
			return
		}
		cfg := experiments.Quick()
		cfg.Train.Epochs = 2
		cfg.Train.MaxPairsPerDesign = 60
		fixEnv, fixErr = experiments.NewEnv(fixDS, cfg)
		if fixErr != nil {
			return
		}
		fixT4, fixErr = fixEnv.RunTable4()
		if fixErr != nil {
			return
		}
		fixNL, fixErr = netlist.Generate(netlist.Spec{
			Name: "bench", Seed: 5, Gates: 800, SeqFraction: 0.3, Depth: 11,
			TechName: "N16", ClockTightness: 0.95, HVTFraction: 0.3, LVTFraction: 0.1,
			Locality: 0.4, FanoutSkew: 0.4, ShortPathFraction: 0.2, ActivityMean: 0.2,
		})
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fixEnv, fixT4
}

// BenchmarkTable4ZeroShot regenerates Table IV: 4-fold cross-validated
// offline alignment and zero-shot evaluation over all 17 designs.
func BenchmarkTable4ZeroShot(b *testing.B) {
	env, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t4, err := env.RunTable4()
		if err != nil {
			b.Fatal(err)
		}
		if len(t4.Rows) != 17 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkFig5Scatter regenerates the Fig. 5 power-TNS scatter series for
// D4, D6, D11, D14 from the cross-validation run.
func BenchmarkFig5Scatter(b *testing.B) {
	env, t4 := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := env.RunFig5(t4, nil)
		if err != nil {
			b.Fatal(err)
		}
		if s := experiments.FormatFig5(series); len(s) == 0 {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkFig6OnlineTrajectory regenerates the Fig. 6 online fine-tuning
// trajectory (per-iteration power/TNS/QoR) for D10.
func BenchmarkFig6OnlineTrajectory(b *testing.B) {
	env, t4 := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.RunOnline(t4, "D10")
		if err != nil {
			b.Fatal(err)
		}
		if s := experiments.FormatFig6([]*experiments.OnlineResult{r}); len(s) == 0 {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkFig7ProgressiveScatter regenerates the Fig. 7 progressive QoR
// scatter for D10 during online fine-tuning.
func BenchmarkFig7ProgressiveScatter(b *testing.B) {
	env, t4 := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.RunOnline(t4, "D10")
		if err != nil {
			b.Fatal(err)
		}
		if s := env.FormatFig7(r); len(s) == 0 {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkAblationStudy regenerates the design-choice ablation (loss
// variants and beam width sweep) on fold 0.
func BenchmarkAblationStudy(b *testing.B) {
	env, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ab, err := env.RunAblation()
		if err != nil {
			b.Fatal(err)
		}
		if len(ab.LossRows) != 4 {
			b.Fatal("wrong variant count")
		}
	}
}

// BenchmarkBaselineComparison regenerates the Section II comparison:
// random/BO/ACO under an evaluation budget vs zero-shot InsightAlign.
func BenchmarkBaselineComparison(b *testing.B) {
	env, t4 := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trs, _, err := env.RunBaselines(t4, "D8", 15, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(trs) != 3 {
			b.Fatal("wrong trajectory count")
		}
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the computational kernels.

// BenchmarkFlowRun measures one full P&R flow execution (placement → CTS →
// routing → STA with repair → leakage recovery → power) on an 800-gate
// design.
func BenchmarkFlowRun(b *testing.B) {
	fixtures(b)
	runner := flow.NewRunner(fixNL)
	p := flow.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := runner.Run(p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTeacherForcingLogProb measures one differentiable sequence
// likelihood evaluation (Eq. 3) — the inner loop of alignment training.
func BenchmarkTeacherForcingLogProb(b *testing.B) {
	model, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	iv := make([]float64, insightalign.InsightDim)
	for i := range iv {
		iv[i] = rng.NormFloat64()
	}
	bits := make([]int, insightalign.NumRecipes)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp := model.LogProb(iv, bits)
		if lp.Item() >= 0 {
			b.Fatal("log prob must be negative")
		}
	}
}

// BenchmarkMDPOPairUpdate measures one margin-DPO training update (two
// teacher-forced likelihoods, backward pass, Adam step).
func BenchmarkMDPOPairUpdate(b *testing.B) {
	env, _ := fixtures(b)
	train, _ := env.Data.Split([]string{"D1"})
	model, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
	if err != nil {
		b.Fatal(err)
	}
	topt := insightalign.DefaultTrainOptions()
	topt.Epochs = 1
	topt.MaxPairsPerDesign = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topt.Seed = int64(i)
		if _, err := model.AlignmentTrain(train[:30], topt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTrainPoints builds the ~3,000-point synthetic archive (17 designs ×
// 176 points, the paper's full dataset shape) used by the alignment
// training benchmarks. Points are synthesized directly — no flow runs — so
// the benchmark isolates the training loop.
func benchTrainPoints() []dataset.Point {
	rng := rand.New(rand.NewSource(12))
	var pts []dataset.Point
	for d := 0; d < 17; d++ {
		var iv insight.Vector
		for i := 0; i < 8; i++ {
			iv[i] = rng.NormFloat64() * 0.5
		}
		name := fmt.Sprintf("B%d", d)
		for k := 0; k < 176; k++ {
			pts = append(pts, dataset.Point{
				DesignName: name,
				Insight:    iv,
				Set:        dataset.SampleSet(rng, 5),
				QoR:        rng.Float64(),
			})
		}
	}
	return pts
}

func benchAlignmentTrain(b *testing.B, workers int) {
	pts := benchTrainPoints()
	topt := insightalign.DefaultTrainOptions()
	topt.Epochs = 1
	topt.MaxPairsPerDesign = 24
	topt.BatchSize = 32
	topt.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		model, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st, err := model.AlignmentTrain(pts, topt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.Epochs[0].PairsPerSec, "pairs/s")
	}
}

// BenchmarkAlignmentTrainSerial measures one minibatch alignment epoch over
// the 3,000-point archive with a single worker — the baseline for the
// data-parallel engine's speedup (recorded in BENCH_train.json).
func BenchmarkAlignmentTrainSerial(b *testing.B) { benchAlignmentTrain(b, 1) }

// BenchmarkAlignmentTrainParallel measures the same epoch sharded across 8
// workers. The trained parameters are bit-identical to the serial run; only
// wall-clock differs.
func BenchmarkAlignmentTrainParallel(b *testing.B) { benchAlignmentTrain(b, 8) }

// benchModelIV builds the default recommender and one random insight query.
func benchModelIV(b *testing.B, seed int64) (*insightalign.Recommender, []float64) {
	b.Helper()
	model, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	iv := make([]float64, insightalign.InsightDim)
	for i := range iv {
		iv[i] = rng.NormFloat64()
	}
	return model, iv
}

// BenchmarkBeamSearchK5 measures the paper's inference path: beam search
// with width 5 over the 40 recipe decisions (KV-cached engine).
func BenchmarkBeamSearchK5(b *testing.B) {
	model, iv := benchModelIV(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cands := model.BeamSearch(iv, 5); len(cands) != 5 {
			b.Fatal("wrong candidate count")
		}
	}
}

// BenchmarkBeamSearchNaive measures the retained full-recompute reference:
// every step re-runs the decoder over the whole prefix for every beam.
// The ratio to BenchmarkBeamSearchCached is the incremental engine's
// speedup (recorded in BENCH_inference.json).
func BenchmarkBeamSearchNaive(b *testing.B) {
	model, iv := benchModelIV(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cands := model.BeamSearchNaive(iv, 5); len(cands) != 5 {
			b.Fatal("wrong candidate count")
		}
	}
}

// BenchmarkBeamSearchCached measures the KV-cached incremental engine with
// batched beams, on the same query as BenchmarkBeamSearchNaive.
func BenchmarkBeamSearchCached(b *testing.B) {
	model, iv := benchModelIV(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cands := model.BeamSearch(iv, 5); len(cands) != 5 {
			b.Fatal("wrong candidate count")
		}
	}
}

// BenchmarkBeamSearchBatch17 measures parallel multi-design inference: 17
// independent insights (the zero-shot evaluation shape of Table IV) fanned
// across the bounded worker pool.
func BenchmarkBeamSearchBatch17(b *testing.B) {
	model, _ := benchModelIV(b, 2)
	rng := rand.New(rand.NewSource(6))
	ivs := make([][]float64, 17)
	for i := range ivs {
		iv := make([]float64, insightalign.InsightDim)
		for j := range iv {
			iv[j] = rng.NormFloat64()
		}
		ivs[i] = iv
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := model.BeamSearchBatch(ivs, 5)
		if len(out) != 17 || len(out[0]) != 5 {
			b.Fatal("wrong batch shape")
		}
	}
}

// BenchmarkDatasetBuild measures offline archive construction (17 designs,
// probe + sampled recipe sets, parallel flow evaluation).
func BenchmarkDatasetBuild(b *testing.B) {
	opts := dataset.DefaultBuildOptions()
	opts.Scale = 0.05
	opts.PointsPerDesign = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		if _, err := dataset.Build(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsightExtraction measures one 72-feature insight vector
// assembly from a completed flow trace.
func BenchmarkInsightExtraction(b *testing.B) {
	fixtures(b)
	runner := flow.NewRunner(fixNL)
	m, tr, err := runner.Run(flow.DefaultParams(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := insightalign.ExtractInsight(m, tr)
		if v[0] != v[0] { // NaN guard
			b.Fatal("NaN insight")
		}
	}
}

// BenchmarkTransferCurve regenerates the transfer-curve extension
// experiment (zero-shot Win% vs number of training designs).
func BenchmarkTransferCurve(b *testing.B) {
	env, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := env.RunTransferCurve([]int{2})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 1 {
			b.Fatal("wrong point count")
		}
	}
}

// BenchmarkIntentionSweep regenerates the intention-sweep extension
// experiment (recommendations under different QoR tradeoffs).
func BenchmarkIntentionSweep(b *testing.B) {
	env, _ := fixtures(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := env.RunIntentionSweep()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkExplain measures the per-recipe insight attribution pass.
func BenchmarkExplain(b *testing.B) {
	model, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	iv := make([]float64, insightalign.InsightDim)
	for i := range iv {
		iv[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if atts := model.Explain(iv, 3); len(atts) != insightalign.NumRecipes {
			b.Fatal("wrong attribution count")
		}
	}
}
