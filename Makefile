# Development entry points. `make check` is the pre-commit gate: vet, build,
# full test suite under the race detector (covers the parallel
# BeamSearchBatch worker pool), and the decoding equivalence guard.

GO ?= go

.PHONY: check vet build test race bench bench-inference

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race schedule is ~10-20× slower than a plain run; the experiments
# package alone can exceed go test's 10-minute default on small machines.
race:
	$(GO) test -race -timeout 45m ./...

# Every benchmark (tables, figures, kernels); slow.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The inference-engine pair behind BENCH_inference.json: naive
# full-recompute beam search vs the KV-cached engine, plus the 17-design
# parallel fan-out.
bench-inference:
	$(GO) test -run '^$$' -bench 'BenchmarkBeamSearch(Naive|Cached|Batch17)$$' -benchmem .
