# Development entry points. `make check` is the pre-commit gate: vet, build,
# full test suite under the race detector (covers the parallel
# BeamSearchBatch worker pool), and the decoding equivalence guard.

GO ?= go

.PHONY: check vet build test race chaos fuzz fuzz-merge bench bench-inference bench-train bench-router bench-retrieve bench-obs serve fleet canary loadtest profile

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race schedule is ~10-20× slower than a plain run; the experiments
# package alone can exceed go test's 10-minute default on small machines.
race:
	$(GO) test -race -timeout 45m ./...

# Fault-tolerance gate: the deterministic fault-injection property tests,
# the 50-iteration online chaos campaign, the serve degradation E2E, and
# the breaker state machine — all under the race detector.
chaos:
	$(GO) test -race -timeout 10m -v \
		-run 'Chaos|FaultInject|Schedule|Plan|Apply|Degrad|Breaker|Exec|RunContext' \
		./internal/faultinject/ ./internal/flow/ ./internal/online/ ./internal/serve/

# Coverage-guided corruption of the parameter loader (longer than CI's
# 10s smoke; crashes land in internal/nn/testdata/fuzz/).
FUZZTIME ?= 60s
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzLoadParams' -fuzztime $(FUZZTIME) ./internal/nn/

# Coverage-guided corruption of the ChipAlign merge inputs: whatever the
# fuzzer feeds it, Merge must never panic, never emit a non-finite
# parameter, and reject malformed checkpoints cleanly (longer than CI's
# 30s smoke; crashes land in internal/lifecycle/testdata/fuzz/).
fuzz-merge:
	$(GO) test -run '^$$' -fuzz 'FuzzMergeCheckpoints' -fuzztime $(FUZZTIME) ./internal/lifecycle/

# Every benchmark (tables, figures, kernels); slow.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Regenerate BENCH_inference.json: the naive full-recompute beam search vs
# the tape-free flat-kernel fast path, the 17-design parallel fan-out, and
# the Table-4 macro run, parsed and machine/date-stamped by cmd/benchjson.
bench-inference:
	$(GO) test -run '^$$' -bench 'BenchmarkBeamSearch(Naive|Cached|Batch17)$$|BenchmarkTable4ZeroShot$$' \
		-benchtime $(or $(BENCHTIME),1s) -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_inference.json

# The training pair behind BENCH_train.json: one minibatch alignment epoch
# over the 3,000-point synthetic archive at 1 vs 8 workers. The two runs
# produce bit-identical parameters; the ratio is the data-parallel
# engine's wall-clock speedup on this machine.
bench-train:
	$(GO) test -run '^$$' -bench 'BenchmarkAlignmentTrain(Serial|Parallel)$$' -benchtime 3x -benchmem .

# Regenerate BENCH_router.json: routed-throughput scaling at 1/2/4
# replicas plus the deterministic replica kill/recovery cycle, stamped by
# cmd/benchjson -router. On a 1-CPU box the scaling column is honestly
# ~1x (see the report's note); the failover/breaker/trace verdicts are
# machine-independent.
bench-router:
	$(GO) run ./cmd/insightalign-router bench \
		| $(GO) run ./cmd/benchjson -router -o BENCH_router.json

# Regenerate BENCH_retrieve.json: cached vs uncached serving latency
# under a Zipf-skewed hot-key mix (hit ratio, p50/p99 split, hot-swap
# staleness check) plus the online tuner's warm-start QoR-at-iteration-k
# deltas, stamped by cmd/benchjson -retrieve.
bench-retrieve:
	$(GO) run ./cmd/insightalign-serve bench-retrieve \
		| $(GO) run ./cmd/benchjson -retrieve -o BENCH_retrieve.json

# Regenerate BENCH_obs.json: identical workloads against a fully
# instrumented server (trace-ID exemplars, per-version latency/QoR
# attribution, burn-rate SLO accounting) and a baseline one, plus the
# isolated observe-path timing whose share of the decoder-path p99 is
# the <5% overhead bound CI asserts.
bench-obs:
	$(GO) run ./cmd/insightalign-serve bench-obs \
		| $(GO) run ./cmd/benchjson -obs -o BENCH_obs.json

# Run the recommendation server. MODEL=path serves trained weights;
# without it a fresh (untrained) model is served for smoke testing.
# WATCH=dir hot-swaps the newest checkpoint in dir as it changes.
SERVE_ADDR ?= :8080
serve:
	$(GO) run ./cmd/insightalign-serve serve -addr $(SERVE_ADDR) \
		$(if $(MODEL),-model $(MODEL)) $(if $(WATCH),-watch $(WATCH))

# One-command serving fleet: the consistent-hash router on FLEET_ADDR
# over FLEET_REPLICAS spawned in-process replicas, smoke-tested with the
# load generator, then torn down. Run the router alone (foreground) with:
#   go run ./cmd/insightalign-router route -spawn 3
FLEET_ADDR ?= 127.0.0.1:8090
FLEET_REPLICAS ?= 3
fleet:
	@$(GO) build -o /tmp/insightalign-router ./cmd/insightalign-router
	@/tmp/insightalign-router route -spawn $(FLEET_REPLICAS) -addr $(FLEET_ADDR) & RT=$$!; \
	sleep 1.5; \
	$(GO) run ./cmd/insightalign-serve loadgen -url http://$(FLEET_ADDR) \
		-clients $(LOADTEST_CLIENTS) -requests $(LOADTEST_REQUESTS); \
	curl -s http://$(FLEET_ADDR)/healthz; echo; \
	kill -TERM $$RT 2>/dev/null; wait $$RT 2>/dev/null; \
	echo "fleet: router + $(FLEET_REPLICAS) replicas drove $(LOADTEST_REQUESTS) requests, shut down clean"

# Checkpoint-lifecycle demo: boot a lifecycle-enabled server, drop a
# jittered candidate checkpoint into the watched candidate directory,
# and drive live traffic until the shadow → canary → promote pipeline
# completes. Prints /debug/lifecycle before and after the traffic; the
# journaled verdict trail survives in $(CANARY_DIR)/lifecycle.jsonl.
# A behaviorally-regressing candidate dropped into the same directory
# would instead be rolled back and quarantined — see DESIGN.md §16.
CANARY_ADDR ?= 127.0.0.1:8085
CANARY_DIR ?= /tmp/insightalign-canary
canary:
	@$(GO) build -o /tmp/insightalign-serve ./cmd/insightalign-serve
	@$(GO) build -o /tmp/insightalign-ctl ./cmd/insightalign-ctl
	@rm -rf $(CANARY_DIR) && mkdir -p $(CANARY_DIR)/candidates $(CANARY_DIR)/quarantine
	@/tmp/insightalign-ctl mint -out $(CANARY_DIR)/live.bin -seed 7
	@/tmp/insightalign-serve serve -addr $(CANARY_ADDR) -model $(CANARY_DIR)/live.bin \
		-candidate-dir $(CANARY_DIR)/candidates -lifecycle-journal $(CANARY_DIR)/lifecycle.jsonl \
		-quarantine-dir $(CANARY_DIR)/quarantine -poll 200ms \
		-canary-weight 0.5 -shadow-samples 8 -shadow-every 1 \
		-min-canary-samples 8 -promote-samples 32 2>$(CANARY_DIR)/serve.log & SRV=$$!; \
	sleep 1.5; \
	/tmp/insightalign-ctl mint -out $(CANARY_DIR)/candidates/cand-001.bin \
		-from $(CANARY_DIR)/live.bin -jitter 0.01 -seed 11; \
	sleep 1; \
	echo "--- candidate submitted:"; \
	/tmp/insightalign-ctl status -addr http://$(CANARY_ADDR); echo; \
	$(GO) run ./cmd/insightalign-serve loadgen -url http://$(CANARY_ADDR) \
		-clients 4 -requests 600 >/dev/null; \
	echo "--- after 600 live requests:"; \
	/tmp/insightalign-ctl status -addr http://$(CANARY_ADDR); echo; \
	kill -TERM $$SRV 2>/dev/null; wait $$SRV 2>/dev/null; \
	echo "canary: verdict trail journaled in $(CANARY_DIR)/lifecycle.jsonl"

# Fire the load generator at a running server (see BENCH_serve.json for
# the recorded batched-vs-unbatched sweep).
LOADTEST_URL ?= http://127.0.0.1:8080
LOADTEST_CLIENTS ?= 8
LOADTEST_REQUESTS ?= 200
loadtest:
	$(GO) run ./cmd/insightalign-serve loadgen -url $(LOADTEST_URL) \
		-clients $(LOADTEST_CLIENTS) -requests $(LOADTEST_REQUESTS)

# Capture a CPU profile of the server under load: boot a fresh-model
# server on PROFILE_ADDR, drive it with the load generator while pulling
# /debug/pprof/profile for PROFILE_SECONDS, then shut the server down.
# Inspect with: go tool pprof cpu.pprof
PROFILE_ADDR ?= 127.0.0.1:8080
PROFILE_SECONDS ?= 10
profile:
	@$(GO) build -o /tmp/insightalign-serve ./cmd/insightalign-serve
	@/tmp/insightalign-serve serve -addr $(PROFILE_ADDR) & SRV=$$!; \
	sleep 1; \
	( $(GO) run ./cmd/insightalign-serve loadgen -url http://$(PROFILE_ADDR) \
		-clients $(LOADTEST_CLIENTS) -requests 100000 -timeout 60s >/dev/null & echo $$! > /tmp/ia-loadgen.pid ); \
	curl -s -o cpu.pprof "http://$(PROFILE_ADDR)/debug/pprof/profile?seconds=$(PROFILE_SECONDS)"; \
	kill $$(cat /tmp/ia-loadgen.pid) 2>/dev/null; kill $$SRV 2>/dev/null; rm -f /tmp/ia-loadgen.pid; \
	echo "wrote cpu.pprof — inspect with: go tool pprof cpu.pprof"
