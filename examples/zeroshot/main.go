// Zero-shot transfer: the paper's core claim. Train InsightAlign with
// 4-fold cross-validation and evaluate the top-5 recommendations on every
// held-out design, reproducing the structure of Table IV at example scale.
package main

import (
	"fmt"
	"log"

	"insightalign"
	"insightalign/internal/experiments"
)

func main() {
	opts := insightalign.DefaultDatasetOptions()
	opts.Scale = 0.05
	opts.PointsPerDesign = 16
	fmt.Println("building offline archive...")
	ds, err := insightalign.BuildDataset(opts)
	if err != nil {
		log.Fatal(err)
	}

	cfg := experiments.Quick()
	env, err := experiments.NewEnv(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running 4-fold cross-validated zero-shot evaluation (Table IV protocol)...")
	t4, err := env.RunTable4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(t4.Format())
	fmt.Printf("\nmean Win%% = %.1f — the fraction of known recipe sets beaten by the\n", t4.MeanWinPct())
	fmt.Println("best of five zero-shot recommendations, on designs the model never saw.")

	// Fig. 5 style check: recommendations should sit lower-left of the
	// known cloud (less power, less TNS).
	series, err := env.RunFig5(t4, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlower-left score of recommendations vs known cloud (positive = better):")
	for _, s := range series {
		fmt.Printf("  %-4s %+.2f\n", s.Design, s.LowerLeftScore())
	}
}
