// Baseline comparison: the motivation of Section II. Random search,
// Bayesian optimization, and ant colony optimization each explore a fresh
// design from scratch under a fixed flow-evaluation budget; InsightAlign's
// zero-shot recommendation spends only K=5 evaluations.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"insightalign"
)

func main() {
	const design = "D6"
	const budget = 20

	opts := insightalign.DefaultDatasetOptions()
	opts.Scale = 0.05
	opts.PointsPerDesign = 16
	fmt.Println("building offline archive...")
	ds, err := insightalign.BuildDataset(opts)
	if err != nil {
		log.Fatal(err)
	}
	designs, err := insightalign.Suite(opts.Scale)
	if err != nil {
		log.Fatal(err)
	}
	var target *insightalign.Design
	for _, d := range designs {
		if d.Name == design {
			target = d
		}
	}
	runner := insightalign.NewFlowRunner(target)
	st, err := ds.StatsOf(design)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))

	evaluate := func(s insightalign.RecipeSet) float64 {
		params := insightalign.ApplyRecipes(insightalign.DefaultFlowParams(), s)
		m, _, err := runner.Run(params, rng.Int63())
		if err != nil {
			log.Fatal(err)
		}
		return insightalign.ScoreQoR(*m, st, ds.Intention)
	}

	// Black-box baselines: each gets `budget` flow evaluations.
	fmt.Printf("\nblack-box tuning of %s under a %d-evaluation budget:\n", design, budget)
	for _, name := range []string{"random", "bayesopt", "aco"} {
		opt, err := insightalign.NewBaseline(name, 3, opts.MaxRecipesPerSet)
		if err != nil {
			log.Fatal(err)
		}
		best := -1e18
		evals := 0
		for evals < budget {
			for _, s := range opt.Propose(5) {
				if evals >= budget {
					break
				}
				q := evaluate(s)
				opt.Observe(s, q)
				if q > best {
					best = q
				}
				evals++
			}
		}
		fmt.Printf("  %-9s best QoR after %d evals: %.3f\n", name, budget, best)
	}

	// InsightAlign: offline alignment on the other 16 designs, then a
	// zero-shot top-5 recommendation — 5 evaluations total.
	model, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
	if err != nil {
		log.Fatal(err)
	}
	train, _ := ds.Split([]string{design})
	topt := insightalign.DefaultTrainOptions()
	topt.Epochs = 3
	topt.MaxPairsPerDesign = 120
	fmt.Println("\noffline alignment for InsightAlign (no evaluations on the target design)...")
	if _, err := model.AlignmentTrain(train, topt); err != nil {
		log.Fatal(err)
	}
	iv, _ := ds.InsightOf(design)
	best := -1e18
	for _, c := range model.BeamSearch(iv.Slice(), 5) {
		if q := evaluate(c.Set); q > best {
			best = q
		}
	}
	fmt.Printf("  InsightAlign zero-shot best-of-5 (5 evals): %.3f\n", best)
	fmt.Println("\nInsightAlign reaches comparable or better QoR with a fraction of the")
	fmt.Println("evaluation budget — the compute argument of the paper's introduction.")
}
