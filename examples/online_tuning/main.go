// Online fine-tuning: starting from an offline-aligned model, close the
// loop with the physical design flow — propose K=5 recipe sets, run them,
// and update the policy with margin-DPO + PPO — reproducing the Fig. 6/7
// experiment of the paper at example scale.
package main

import (
	"fmt"
	"log"

	"insightalign"
)

func main() {
	const design = "D10" // the paper's hardest zero-shot case

	opts := insightalign.DefaultDatasetOptions()
	opts.Scale = 0.05
	opts.PointsPerDesign = 16
	fmt.Println("building offline archive...")
	ds, err := insightalign.BuildDataset(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Offline alignment with the target design held out (zero-shot start).
	model, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
	if err != nil {
		log.Fatal(err)
	}
	train, _ := ds.Split([]string{design})
	topt := insightalign.DefaultTrainOptions()
	topt.Epochs = 3
	topt.MaxPairsPerDesign = 120
	fmt.Println("offline alignment...")
	if _, err := model.AlignmentTrain(train, topt); err != nil {
		log.Fatal(err)
	}

	// Online loop against the flow.
	designs, err := insightalign.Suite(opts.Scale)
	if err != nil {
		log.Fatal(err)
	}
	var target *insightalign.Design
	for _, d := range designs {
		if d.Name == design {
			target = d
		}
	}
	iv, _ := ds.InsightOf(design)
	st, err := ds.StatsOf(design)
	if err != nil {
		log.Fatal(err)
	}
	tuner, err := insightalign.NewTuner(model, insightalign.NewFlowRunner(target),
		iv, st, ds.Intention, insightalign.DefaultTunerOptions())
	if err != nil {
		log.Fatal(err)
	}

	best, _ := ds.BestKnown(design)
	fmt.Printf("\nonline fine-tuning %s — best known archive QoR %.3f\n", design, best.QoR)
	fmt.Printf("%-5s %12s %12s %9s %9s\n", "iter", "power(mW)", "TNS(ns)", "bestQoR", "avgTop5")
	crossed := -1
	for i := 0; i < 6; i++ {
		rec, err := tuner.Iterate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5d %12.4g %12.4g %9.3f %9.3f\n",
			rec.Iteration, rec.PowerOfBest, rec.TNSOfBest, rec.BestQoR, rec.AvgTopK)
		if crossed < 0 && rec.BestQoR > best.QoR {
			crossed = i
		}
	}
	if crossed >= 0 {
		fmt.Printf("\n→ surpassed every known recipe set at iteration %d (Fig. 7's claim)\n", crossed)
	} else {
		fmt.Println("\n→ did not cross the best-known bar yet; run more iterations")
	}
}
