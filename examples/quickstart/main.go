// Quickstart: generate a design, run the simulated physical design flow,
// inspect its insights, and get zero-shot recipe recommendations from a
// freshly aligned model — the full InsightAlign loop in one file.
package main

import (
	"fmt"
	"log"

	"insightalign"
)

func main() {
	// 1. Build a small offline dataset: the 17-design suite at 5% scale,
	//    12 recipe sets per design (seconds, not minutes).
	opts := insightalign.DefaultDatasetOptions()
	opts.Scale = 0.05
	opts.PointsPerDesign = 12
	fmt.Println("building offline dataset (17 designs x 12 recipe sets)...")
	ds, err := insightalign.BuildDataset(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d datapoints\n\n", len(ds.Points))

	// 2. Offline alignment (Algorithm 1): pairwise margin-DPO over QoR
	//    preferences. Hold out D4 so the recommendation below is zero-shot.
	model, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
	if err != nil {
		log.Fatal(err)
	}
	train, _ := ds.Split([]string{"D4"})
	topt := insightalign.DefaultTrainOptions()
	topt.Epochs = 3
	topt.MaxPairsPerDesign = 100
	fmt.Println("offline alignment (margin-DPO, lambda=2)...")
	stats, err := model.AlignmentTrain(train, topt)
	if err != nil {
		log.Fatal(err)
	}
	last := stats.Epochs[len(stats.Epochs)-1]
	fmt.Printf("trained on %d pairs/epoch, final pair accuracy %.2f\n\n", last.Pairs, last.PairAccuracy)

	// 3. Zero-shot recommendation for the unseen design D4: beam search
	//    with width K=5 over the 40 recipe decisions.
	iv, _ := ds.InsightOf("D4")
	recs := model.BeamSearch(iv.Slice(), 5)
	fmt.Println("top-5 recipe sets for unseen design D4:")
	catalog := insightalign.Recipes()
	for i, c := range recs {
		fmt.Printf("#%d (logprob %.2f):", i+1, c.LogProb)
		for _, r := range catalog {
			if c.Set[r.ID] {
				fmt.Printf(" %s", r.Name)
			}
		}
		fmt.Println()
	}

	// 4. Evaluate the best recommendation with the flow and compare against
	//    the best recipe set in the archive.
	designs, err := insightalign.Suite(opts.Scale)
	if err != nil {
		log.Fatal(err)
	}
	var d4 *insightalign.Design
	for _, d := range designs {
		if d.Name == "D4" {
			d4 = d
		}
	}
	runner := insightalign.NewFlowRunner(d4)
	params := insightalign.ApplyRecipes(insightalign.DefaultFlowParams(), recs[0].Set)
	m, _, err := runner.Run(params, 42)
	if err != nil {
		log.Fatal(err)
	}
	st, err := ds.StatsOf("D4")
	if err != nil {
		log.Fatal(err)
	}
	q := insightalign.ScoreQoR(*m, st, ds.Intention)
	best, _ := ds.BestKnown("D4")
	fmt.Printf("\nzero-shot #1: power %.4g mW, TNS %.4g ns, QoR %.3f\n", m.PowerMW, m.TNSns, q)
	fmt.Printf("best known : power %.4g mW, TNS %.4g ns, QoR %.3f\n",
		best.Metrics.PowerMW, best.Metrics.TNSns, best.QoR)
	if q > best.QoR {
		fmt.Println("→ the zero-shot recommendation beats every recipe set in the archive")
	}
}
