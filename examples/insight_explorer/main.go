// Insight explorer: run the probe iteration on several suite designs and
// print their design insight vectors side by side — the Table I analyses
// that let InsightAlign discover design similarity and transfer recipes.
package main

import (
	"fmt"
	"log"

	"insightalign"
)

func main() {
	designs, err := insightalign.Suite(0.08)
	if err != nil {
		log.Fatal(err)
	}
	// A contrast set: easy low-power MCU, timing-critical crypto block,
	// congestion-heavy interconnect.
	pick := map[string]bool{"D4": true, "D6": true, "D17": true}

	type probed struct {
		name string
		iv   insightalign.Insight
	}
	var results []probed
	for _, d := range designs {
		if !pick[d.Name] {
			continue
		}
		runner := insightalign.NewFlowRunner(d)
		m, tr, err := runner.Run(insightalign.DefaultFlowParams(), 1)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, probed{d.Name, insightalign.ExtractInsight(m, tr)})
	}

	names := insightalign.InsightFeatureNames()
	fmt.Printf("%-28s", "insight feature")
	for _, r := range results {
		fmt.Printf(" %8s", r.name)
	}
	fmt.Println()
	// Show the expert-analysis features of Table I plus a few structural
	// descriptors; the full 72-dim vector feeds the model.
	interesting := map[string]bool{
		"place_cong_step1_high": true, "place_cong_step3_high": true,
		"timing_easy": true, "wns_over_period": true,
		"hold_fix_count_log": true, "weak_cell_pct": true,
		"seq_power_dominant": true, "leakage_dominant": true,
		"power_save_opp_postroute": true, "harmful_clock_skew": true,
		"route_overflow_frac": true, "drc_log": true,
		"gates_log": true, "hvt_fraction": true, "clock_period_log": true,
	}
	for i, n := range names {
		if !interesting[n] {
			continue
		}
		fmt.Printf("%-28s", n)
		for _, r := range results {
			fmt.Printf(" %8.3f", r.iv[i])
		}
		fmt.Println()
	}

	fmt.Println("\nThe designs are clearly separable in insight space: D4 is timing-easy")
	fmt.Println("and leakage-dominant (power recipes help), D6 is timing-critical with")
	fmt.Println("weak cells on critical paths (sizing recipes help), and D17 is")
	fmt.Println("congestion-bound (routing recipes help). InsightAlign conditions its")
	fmt.Println("recipe choices on exactly these signals.")
}
