// Command insightalign-ctl is the operator CLI for the checkpoint
// lifecycle: it drives a serving process's /debug/lifecycle endpoint
// (submit a candidate, inspect shadow/canary progress, force a promote
// or rollback) and performs ChipAlign-style weight merges of per-design
// tuned checkpoints back into a base model, optionally with a zero-shot
// Table-IV-style before/after evaluation.
//
// Usage:
//
//	insightalign-ctl status   [-addr http://127.0.0.1:8080]
//	insightalign-ctl submit   -path ckpt.bin [-addr ...]
//	insightalign-ctl promote  [-addr ...]
//	insightalign-ctl rollback [-reason why] [-addr ...]
//	insightalign-ctl merge    -base base.bin -tuned a.bin,b.bin -out merged.bin
//	                          [-alpha 0.5] [-eval] [-data dataset.gob]
//	                          [-scale 0.15] [-points 176] [-seed 1]
//	insightalign-ctl mint     -out cand.bin [-seed 7] [-from base.bin -jitter 0.01]
//
// merge computes out = (1−α)·base + α·mean(tuned...) per parameter —
// deterministic (the report's hash is reproducible bit-for-bit) and
// shape-checked, rejecting non-finite weights. With -eval, the merged
// model and the base are both zero-shot evaluated over the dataset's
// designs and the before/after Win% table is printed, so a merged
// generalist can be judged before it enters the shadow→canary pipeline.
// mint writes a fresh (or jittered copy of an existing) parameter file —
// the quick way to produce a submit-able candidate for demos and tests.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"insightalign/internal/core"
	"insightalign/internal/dataset"
	"insightalign/internal/experiments"
	"insightalign/internal/lifecycle"
	"insightalign/internal/nn"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "status":
		err = cmdStatus(os.Args[2:])
	case "submit":
		err = cmdAction("submit", os.Args[2:])
	case "promote":
		err = cmdAction("promote", os.Args[2:])
	case "rollback":
		err = cmdAction("rollback", os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "mint":
		err = cmdMint(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: insightalign-ctl <status|submit|promote|rollback|merge|mint> [flags]")
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "serving process base URL")
	fs.Parse(args)
	resp, err := http.Get(strings.TrimRight(*addr, "/") + "/debug/lifecycle")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("lifecycle status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	os.Stdout.Write(body)
	return nil
}

// cmdAction POSTs one state-machine action to /debug/lifecycle.
func cmdAction(action string, args []string) error {
	fs := flag.NewFlagSet(action, flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "serving process base URL")
	path := fs.String("path", "", "candidate checkpoint path (submit only; must be visible to the server)")
	reason := fs.String("reason", "", "rollback reason (rollback only)")
	fs.Parse(args)
	if action == "submit" && *path == "" {
		return fmt.Errorf("submit requires -path")
	}
	payload, _ := json.Marshal(map[string]string{"action": action, "path": *path, "reason": *reason})
	resp, err := http.Post(strings.TrimRight(*addr, "/")+"/debug/lifecycle",
		"application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("lifecycle %s failed (%d): %s", action, resp.StatusCode, bytes.TrimSpace(body))
	}
	os.Stdout.Write(body)
	return nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	basePath := fs.String("base", "", "base model/checkpoint file")
	tunedList := fs.String("tuned", "", "comma-separated per-design tuned checkpoint files")
	outPath := fs.String("out", "", "merged parameter file to write (empty: dry run, report only)")
	alpha := fs.Float64("alpha", 0.5, "interpolation weight toward the tuned mean, in [0, 1]")
	doEval := fs.Bool("eval", false, "zero-shot before/after evaluation over the dataset's designs")
	dataPath := fs.String("data", "", "existing dataset.gob for -eval (built at -scale/-points if empty)")
	scale := fs.Float64("scale", 0.15, "suite gate-count scale when building the eval dataset")
	points := fs.Int("points", 176, "datapoints per design when building the eval dataset")
	seed := fs.Int64("seed", 1, "eval dataset seed")
	fs.Parse(args)
	if *basePath == "" || *tunedList == "" {
		return fmt.Errorf("merge requires -base and -tuned")
	}
	tunedPaths := strings.Split(*tunedList, ",")
	cfg := core.DefaultConfig()
	merged, rep, err := lifecycle.MergeFiles(cfg, *basePath, tunedPaths, *outPath, *alpha)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	if *outPath != "" {
		fmt.Printf("merged model written to %s\n", *outPath)
	}
	if !*doEval {
		return nil
	}
	ds, err := loadOrBuildDataset(*dataPath, *scale, *points, *seed)
	if err != nil {
		return err
	}
	env, err := experiments.NewEnv(ds, experiments.Quick())
	if err != nil {
		return err
	}
	base, err := loadModel(cfg, *basePath)
	if err != nil {
		return err
	}
	fmt.Println("zero-shot evaluating base model...")
	before, err := env.EvalModelZeroShot(base, nil)
	if err != nil {
		return err
	}
	fmt.Println("zero-shot evaluating merged model...")
	after, err := env.EvalModelZeroShot(merged, nil)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatZeroShotDelta(
		fmt.Sprintf("alpha=%g over %d tuned checkpoints", *alpha, len(tunedPaths)), before, after))
	return nil
}

func cmdMint(args []string) error {
	fs := flag.NewFlagSet("mint", flag.ExitOnError)
	outPath := fs.String("out", "", "parameter file to write")
	seed := fs.Int64("seed", 7, "fresh-model init seed (ignored with -from)")
	fromPath := fs.String("from", "", "existing parameter file to copy instead of fresh init")
	jitter := fs.Float64("jitter", 0, "uniform ±jitter noise added to every parameter (makes -from copies distinct)")
	fs.Parse(args)
	if *outPath == "" {
		return fmt.Errorf("mint requires -out")
	}
	cfg := core.DefaultConfig()
	var m *core.Model
	var err error
	if *fromPath != "" {
		m, err = loadModel(cfg, *fromPath)
	} else {
		cfg.Seed = *seed
		m, err = core.New(cfg)
	}
	if err != nil {
		return err
	}
	if *jitter > 0 {
		rng := rand.New(rand.NewSource(*seed))
		for _, p := range m.Params() {
			for i := range p.Data {
				p.Data[i] += (rng.Float64()*2 - 1) * *jitter
			}
		}
	}
	if err := nn.SaveParamsFile(*outPath, m.Params()); err != nil {
		return err
	}
	fmt.Printf("minted %s (seed %d, from %q, jitter %g)\n", *outPath, *seed, *fromPath, *jitter)
	return nil
}

func loadModel(cfg core.Config, path string) (*core.Model, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := nn.LoadParams(bytes.NewReader(raw), m.Params()); err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return m, nil
}

func loadOrBuildDataset(path string, scale float64, points int, seed int64) (*dataset.Dataset, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.Load(f)
	}
	opts := dataset.DefaultBuildOptions()
	opts.Scale = scale
	opts.PointsPerDesign = points
	opts.Seed = seed
	fmt.Printf("building eval dataset (scale %g, %d points/design)...\n", scale, points)
	t0 := time.Now()
	ds, err := dataset.Build(opts)
	if err != nil {
		return nil, err
	}
	fmt.Printf("built %d datapoints in %v\n", len(ds.Points), time.Since(t0))
	return ds, nil
}
