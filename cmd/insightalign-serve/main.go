// Command insightalign-serve runs the recommendation serving subsystem: a
// batched HTTP inference server over a trained InsightAlign model with a
// hot-swappable model registry and graceful shutdown. The full
// observability surface is mounted on the serving listener itself:
// Prometheus metrics at /metrics (with trace-ID exemplars and per-version
// latency/QoR attribution), span traces at /debug/traces (every
// /v1/recommend response carries a trace_id resolvable there), burn-rate
// SLO verdicts at /debug/slo, a continuous-profiling ring at
// /debug/profiles (on by default, see -profile-ring), and pprof at
// /debug/pprof/. It also embeds a load-generator mode for benchmarking
// a running server.
//
// Usage:
//
//	insightalign-serve serve   -model model.bin [-addr :8080] [-watch ckpts/ -poll 2s]
//	                           [-queue 256] [-max-batch 32] [-window 2ms]
//	                           [-timeout 10s] [-no-batch] [-seed 1]
//	                           [-cache] [-cache-size 4096] [-warm-seeds 4]
//	                           [-retrieve-journal run.jsonl]
//	                           [-profile-ring=false] [-profile-dir DIR]
//	                           [-slo-journal slo.jsonl]
//	insightalign-serve loadgen -url http://127.0.0.1:8080 [-clients 8]
//	                           [-requests 200] [-k 5] [-seed 1]
//	                           [-designs 64] [-zipf 0]
//	insightalign-serve bench-retrieve [-requests 600] [-clients 8]
//	                           [-designs 32] [-zipf 1.5] [-iters 6] [-seed 1]
//	insightalign-serve bench-obs [-requests 600] [-clients 8] [-designs 32]
//	                           [-k 5] [-seed 1] [-micro-iters 50000]
//
// serve: without -model, a freshly initialized (untrained) model is
// served — useful for smoke tests and load benchmarks. With -watch, the
// newest checkpoint in the directory is hot-swapped in whenever it
// changes, so online fine-tuning output rolls into serving without
// downtime. -cache turns on the insight-fingerprint response cache and
// the similarity outcome store (beam warm-starting); -retrieve-journal
// pre-populates the store by replaying an online-tuner run journal.
// loadgen prints a JSON latency/throughput summary to stdout; -zipf > 1
// skews its design mix toward a hot working set. bench-retrieve is the
// measurement behind `make bench-retrieve`: the cached-vs-uncached
// serving benchmark plus the tuner warm-start QoR-at-iteration-k deltas,
// as one JSON report on stdout. bench-obs is the measurement behind
// `make bench-obs`: the instrumented-vs-baseline observability overhead
// benchmark (exemplars + SLO accounting on vs off), as a JSON report on
// stdout for benchjson -obs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"insightalign/internal/core"
	"insightalign/internal/lifecycle"
	"insightalign/internal/obs"
	"insightalign/internal/obs/slo"
	"insightalign/internal/online"
	"insightalign/internal/retrieve"
	"insightalign/internal/serve"
)

func main() {
	args := os.Args[1:]
	// Default to serve mode so `insightalign-serve -model m.bin` works.
	mode := "serve"
	if len(args) > 0 && (args[0] == "serve" || args[0] == "loadgen" ||
		args[0] == "bench-retrieve" || args[0] == "bench-obs") {
		mode = args[0]
		args = args[1:]
	}
	var err error
	switch mode {
	case "serve":
		err = cmdServe(args)
	case "loadgen":
		err = cmdLoadgen(args)
	case "bench-retrieve":
		err = cmdBenchRetrieve(args)
	case "bench-obs":
		err = cmdBenchObs(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	modelPath := fs.String("model", "", "model or checkpoint file (empty: fresh untrained model)")
	watch := fs.String("watch", "", "checkpoint directory to poll for hot-swaps")
	poll := fs.Duration("poll", 2*time.Second, "checkpoint poll interval")
	queue := fs.Int("queue", 256, "admission queue depth (beyond it: 429)")
	maxBatch := fs.Int("max-batch", 32, "max requests coalesced per decoder call")
	window := fs.Duration("window", 2*time.Millisecond, "micro-batching window")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline")
	batches := fs.Int("concurrent-batches", 2, "decoder calls in flight at once")
	noBatch := fs.Bool("no-batch", false, "disable micro-batching (per-request decode)")
	seed := fs.Int64("seed", 1, "seed for the fresh model when -model is empty")
	cache := fs.Bool("cache", false, "enable the insight-fingerprint response cache + similarity outcome store")
	cacheSize := fs.Int("cache-size", retrieve.DefaultCacheSize, "response-cache capacity (entries)")
	warmSeeds := fs.Int("warm-seeds", 4, "retrieved recipe sets seeding each decode (with -cache or -retrieve-journal)")
	retrieveJournal := fs.String("retrieve-journal", "", "online-tuner run journal to replay into the outcome store at boot")
	noBreaker := fs.Bool("no-breaker", false, "disable the backend circuit breaker")
	brkWindow := fs.Int("breaker-window", 16, "sliding window of backend outcomes")
	brkMin := fs.Int("breaker-min-samples", 8, "outcomes required before the breaker can trip")
	brkRatio := fs.Float64("breaker-threshold", 0.5, "failure ratio that opens the breaker")
	brkCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "open duration before half-open probing")
	brkProbes := fs.Int("breaker-probes", 2, "consecutive probe successes that close the breaker")
	profileRing := fs.Bool("profile-ring", true, "continuous profiling: periodic CPU+heap pprof captures into a bounded on-disk ring at /debug/profiles")
	profileDir := fs.String("profile-dir", "", "profile ring directory (default: <tmp>/insightalign-profiles)")
	profileEvery := fs.Duration("profile-interval", 60*time.Second, "profile capture period")
	profileKeep := fs.Int("profile-keep", 8, "newest profiles kept per kind in the ring")
	sloJournal := fs.String("slo-journal", "", "journal file for slo_alert state transitions (empty: not journaled)")
	candDir := fs.String("candidate-dir", "", "candidate checkpoint dir: new files enter shadow→canary gating instead of hot-swapping (see -watch)")
	lcJournal := fs.String("lifecycle-journal", "", "lifecycle event journal, opened append-mode so shadow/canary state survives restarts")
	canaryWeight := fs.Float64("canary-weight", 0.05, "fraction of fingerprints routed to the candidate during canary")
	shadowSamples := fs.Int("shadow-samples", 32, "shadow comparisons required before the shadow verdict")
	minCanarySamples := fs.Int("min-canary-samples", 32, "candidate requests required before any rollback trigger")
	promoteSamples := fs.Int("promote-samples", 200, "healthy candidate requests that trigger promotion")
	maxQoRRegression := fs.Float64("max-qor-regression", 1.0, "mean live−candidate log-prob gap that rolls a canary back")
	maxLatencyRatio := fs.Float64("max-latency-ratio", 3.0, "candidate/live p95 latency ratio that rolls a canary back")
	maxErrorRatio := fs.Float64("max-error-ratio", 0.10, "candidate error fraction that rolls a canary back")
	shadowEvery := fs.Int("shadow-every", 4, "mirror every Nth live request to the shadow candidate")
	shadowReplay := fs.String("shadow-replay", "", "online-tuner journal replay-scored at candidate submit (shadow evidence without live traffic)")
	quarantineDir := fs.String("quarantine-dir", "", "rolled-back candidate files are moved here (empty: left in place, hash still blacklisted)")
	fs.Parse(args)

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	cfg := serve.DefaultConfig()
	cfg.Addr = *addr
	cfg.QueueDepth = *queue
	cfg.MaxBatch = *maxBatch
	cfg.BatchWindow = *window
	cfg.RequestTimeout = *timeout
	cfg.MaxConcurrentBatches = *batches
	cfg.DisableBatching = *noBatch
	cfg.Breaker = serve.BreakerConfig{
		Disabled:       *noBreaker,
		Window:         *brkWindow,
		MinSamples:     *brkMin,
		FailureRatio:   *brkRatio,
		Cooldown:       *brkCooldown,
		HalfOpenProbes: *brkProbes,
	}
	cfg.Logger = logger
	cfg.WarmSeeds = *warmSeeds
	if *cache {
		cfg.Cache = retrieve.NewCache(*cacheSize)
		cfg.Store = retrieve.NewStore()
	}
	if *retrieveJournal != "" {
		if cfg.Store == nil {
			cfg.Store = retrieve.NewStore()
		}
		n, err := retrieve.ReplayJournalFile(cfg.Store, *retrieveJournal)
		if err != nil {
			return fmt.Errorf("replay retrieve journal: %w", err)
		}
		logger.Info("retrieval store replayed", "path", *retrieveJournal,
			"outcomes", n, "designs", cfg.Store.Designs())
	}
	if *sloJournal != "" {
		j, err := obs.NewJournal(*sloJournal)
		if err != nil {
			return fmt.Errorf("slo journal: %w", err)
		}
		cfg.SLO = slo.New(slo.Config{Journal: j})
		logger.Info("slo alerts journaled", "path", *sloJournal)
	}
	if *profileRing {
		dir := *profileDir
		if dir == "" {
			dir = filepath.Join(os.TempDir(), "insightalign-profiles")
		}
		prof, err := obs.StartProfiler(obs.ProfilerConfig{
			Dir: dir, Interval: *profileEvery, Keep: *profileKeep,
		})
		if err != nil {
			return fmt.Errorf("profile ring: %w", err)
		}
		defer prof.Close()
		cfg.Profiler = prof
		logger.Info("continuous profiling on", "dir", dir,
			"interval", profileEvery.String(), "keep", *profileKeep)
	}

	reg, err := serve.NewRegistry(cfg.Model)
	if err != nil {
		return err
	}
	if *modelPath != "" {
		snap, err := reg.LoadFile(*modelPath)
		if err != nil {
			return err
		}
		logger.Info("model loaded", "path", *modelPath, "version", snap.Version)
	} else {
		mcfg := cfg.Model
		mcfg.Seed = *seed
		m, err := core.New(mcfg)
		if err != nil {
			return err
		}
		snap, err := reg.SetModel(m, "fresh")
		if err != nil {
			return err
		}
		logger.Warn("serving a fresh untrained model (no -model given)", "version", snap.Version)
	}

	// Checkpoint lifecycle: with -candidate-dir (or -lifecycle-journal for
	// resume-only setups), new checkpoints are gated through shadow
	// evaluation and canary instead of hot-swapped on sight. The
	// controller and the server share one metrics registry so lifecycle
	// gauges ride the same /metrics scrape.
	var ctl *lifecycle.Controller
	var srvForHooks *serve.Server
	if *candDir != "" || *lcJournal != "" {
		if *watch != "" {
			logger.Warn("-watch hot-swaps checkpoints ungated while -candidate-dir gates them; use one or the other")
		}
		met := obs.NewRegistry()
		cfg.Metrics = met
		var lj *obs.Journal
		if *lcJournal != "" {
			var err error
			lj, err = obs.OpenJournal(*lcJournal)
			if err != nil {
				return fmt.Errorf("lifecycle journal: %w", err)
			}
		}
		var err error
		ctl, err = lifecycle.New(lifecycle.Config{
			Registry: reg,
			Journal:  lj,
			Thresholds: lifecycle.Thresholds{
				MinShadowSamples: *shadowSamples,
				MinCanarySamples: *minCanarySamples,
				PromoteSamples:   *promoteSamples,
				MaxErrorRatio:    *maxErrorRatio,
				MaxLatencyRatio:  *maxLatencyRatio,
				MaxQoRRegression: *maxQoRRegression,
			},
			CanaryWeight:      *canaryWeight,
			ShadowSampleEvery: *shadowEvery,
			ShadowReplay:      *shadowReplay,
			QuarantineDir:     *quarantineDir,
			Metrics:           met,
			Logger:            logger,
			OnPromote: func(prev, promoted *serve.Snapshot) {
				logger.Info("candidate promoted", "version", promoted.Version, "source", promoted.Source)
				if srvForHooks != nil {
					// Retire both stale measurement scopes: the replaced
					// live version and the candidate's canary-time tag.
					if prev != nil {
						srvForHooks.Metrics().EvictVersion(prev.Version)
						srvForHooks.SLO().EvictScope(prev.Version)
					}
					srvForHooks.Metrics().EvictVersion("cand-" + promoted.Hash)
					srvForHooks.SLO().EvictScope("cand-" + promoted.Hash)
				}
			},
			OnRollback: func(version, reason string) {
				logger.Warn("candidate rolled back", "version", version, "reason", reason)
				if srvForHooks != nil {
					srvForHooks.Metrics().EvictVersion(version)
					srvForHooks.SLO().EvictScope(version)
				}
			},
		})
		if err != nil {
			return err
		}
		defer ctl.Close()
		if err := ctl.Resume(); err != nil {
			return err
		}
		cfg.Canary = ctl
	}

	srv, err := serve.New(cfg, reg)
	if err != nil {
		return err
	}
	srvForHooks = srv
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *watch != "" {
		go reg.WatchDir(ctx, *watch, *poll, logger)
	}
	if ctl != nil && *candDir != "" {
		go ctl.WatchDir(ctx, *candDir, *poll, logger)
	}
	errc, err := srv.Start()
	if err != nil {
		return err
	}
	select {
	case <-ctx.Done():
		logger.Info("signal received, draining")
	case err := <-errc:
		if err != nil {
			return err
		}
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	return srv.Shutdown(shCtx)
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "server base URL")
	clients := fs.Int("clients", 8, "concurrent clients")
	requests := fs.Int("requests", 200, "total requests")
	k := fs.Int("k", 5, "beam width per request")
	seed := fs.Int64("seed", 1, "insight generation seed")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	designs := fs.Int("designs", 64, "distinct-design pool size")
	zipf := fs.Float64("zipf", 0, "Zipf skew exponent for the design mix (>1 to engage; 0 = round-robin)")
	fs.Parse(args)

	opt := serve.DefaultLoadGenOptions()
	opt.URL = *url
	opt.Clients = *clients
	opt.Requests = *requests
	opt.BeamWidth = *k
	opt.Seed = *seed
	opt.Timeout = *timeout
	opt.Designs = *designs
	opt.ZipfS = *zipf

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := serve.RunLoadGen(ctx, opt)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// cmdBenchRetrieve is the measurement behind `make bench-retrieve`: the
// serving-side cached-vs-uncached benchmark (Zipf hot-key mix, hot-swap
// staleness check) plus the tuner-side warm-start QoR-at-iteration-k
// deltas, emitted as one JSON report on stdout for benchjson -retrieve.
func cmdBenchRetrieve(args []string) error {
	fs := flag.NewFlagSet("bench-retrieve", flag.ExitOnError)
	clients := fs.Int("clients", 0, "concurrent clients (0: default)")
	requests := fs.Int("requests", 0, "requests per phase (0: default)")
	designs := fs.Int("designs", 0, "distinct-design pool size (0: default)")
	zipf := fs.Float64("zipf", 1.5, "Zipf skew exponent for the design mix")
	iters := fs.Int("iters", 6, "online-tuning iterations per warm-start campaign")
	pairs := fs.Int("pairs", 8, "independent (donor, target) design pairs averaged by the warm-start bench")
	seed := fs.Int64("seed", 1, "benchmark seed")
	skipTuner := fs.Bool("skip-tuner", false, "skip the warm-start tuning campaigns (cache phases only)")
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := serve.DefaultCacheBenchOptions()
	if *clients > 0 {
		opt.Clients = *clients
	}
	if *requests > 0 {
		opt.Requests = *requests
	}
	if *designs > 0 {
		opt.Designs = *designs
	}
	opt.ZipfS = *zipf
	opt.Seed = *seed

	report := struct {
		Cache     serve.CacheBenchResult       `json:"cache"`
		WarmStart *online.WarmStartBenchResult `json:"warm_start,omitempty"`
	}{}
	var err error
	fmt.Fprintln(os.Stderr, "bench-retrieve: cache phases...")
	report.Cache, err = serve.RunCacheBench(ctx, opt)
	if err != nil {
		return err
	}
	if !*skipTuner {
		fmt.Fprintln(os.Stderr, "bench-retrieve: warm-start campaigns...")
		ws, err := online.WarmStartBench(*iters, *pairs, *seed)
		if err != nil {
			return err
		}
		report.WarmStart = &ws
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// cmdBenchObs is the measurement behind `make bench-obs`: an A/B run of
// the same workload against a fully instrumented server (exemplars,
// per-version attribution, SLO accounting) and a baseline one, plus an
// isolated observe-path timing that expresses the per-request
// observability cost as a share of the decoder-path p99. The JSON report
// on stdout feeds benchjson -obs.
func cmdBenchObs(args []string) error {
	fs := flag.NewFlagSet("bench-obs", flag.ExitOnError)
	clients := fs.Int("clients", 0, "concurrent clients (0: default)")
	requests := fs.Int("requests", 0, "requests per measured pass (0: default)")
	designs := fs.Int("designs", 0, "distinct-design pool size (0: default)")
	k := fs.Int("k", 0, "beam width per request (0: default)")
	seed := fs.Int64("seed", 1, "benchmark seed")
	microIters := fs.Int("micro-iters", 0, "observe-path timing loop iterations (0: default)")
	fs.Parse(args)

	opt := serve.DefaultObsBenchOptions()
	if *clients > 0 {
		opt.Clients = *clients
	}
	if *requests > 0 {
		opt.Requests = *requests
	}
	if *designs > 0 {
		opt.Designs = *designs
	}
	if *k > 0 {
		opt.BeamWidth = *k
	}
	if *microIters > 0 {
		opt.MicroIters = *microIters
	}
	opt.Seed = *seed

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintln(os.Stderr, "bench-obs: baseline + instrumented arms...")
	res, err := serve.RunObsBench(ctx, opt)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
