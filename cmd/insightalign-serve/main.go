// Command insightalign-serve runs the recommendation serving subsystem: a
// batched HTTP inference server over a trained InsightAlign model with a
// hot-swappable model registry and graceful shutdown. The full
// observability surface is mounted on the serving listener itself:
// Prometheus metrics at /metrics, span traces at /debug/traces (every
// /v1/recommend response carries a trace_id resolvable there), and pprof
// at /debug/pprof/. It also embeds a load-generator mode for benchmarking
// a running server.
//
// Usage:
//
//	insightalign-serve serve   -model model.bin [-addr :8080] [-watch ckpts/ -poll 2s]
//	                           [-queue 256] [-max-batch 32] [-window 2ms]
//	                           [-timeout 10s] [-no-batch] [-seed 1]
//	insightalign-serve loadgen -url http://127.0.0.1:8080 [-clients 8]
//	                           [-requests 200] [-k 5] [-seed 1]
//
// serve: without -model, a freshly initialized (untrained) model is
// served — useful for smoke tests and load benchmarks. With -watch, the
// newest checkpoint in the directory is hot-swapped in whenever it
// changes, so online fine-tuning output rolls into serving without
// downtime. loadgen prints a JSON latency/throughput summary to stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"insightalign/internal/core"
	"insightalign/internal/serve"
)

func main() {
	args := os.Args[1:]
	// Default to serve mode so `insightalign-serve -model m.bin` works.
	mode := "serve"
	if len(args) > 0 && (args[0] == "serve" || args[0] == "loadgen") {
		mode = args[0]
		args = args[1:]
	}
	var err error
	switch mode {
	case "serve":
		err = cmdServe(args)
	case "loadgen":
		err = cmdLoadgen(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	modelPath := fs.String("model", "", "model or checkpoint file (empty: fresh untrained model)")
	watch := fs.String("watch", "", "checkpoint directory to poll for hot-swaps")
	poll := fs.Duration("poll", 2*time.Second, "checkpoint poll interval")
	queue := fs.Int("queue", 256, "admission queue depth (beyond it: 429)")
	maxBatch := fs.Int("max-batch", 32, "max requests coalesced per decoder call")
	window := fs.Duration("window", 2*time.Millisecond, "micro-batching window")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline")
	batches := fs.Int("concurrent-batches", 2, "decoder calls in flight at once")
	noBatch := fs.Bool("no-batch", false, "disable micro-batching (per-request decode)")
	seed := fs.Int64("seed", 1, "seed for the fresh model when -model is empty")
	noBreaker := fs.Bool("no-breaker", false, "disable the backend circuit breaker")
	brkWindow := fs.Int("breaker-window", 16, "sliding window of backend outcomes")
	brkMin := fs.Int("breaker-min-samples", 8, "outcomes required before the breaker can trip")
	brkRatio := fs.Float64("breaker-threshold", 0.5, "failure ratio that opens the breaker")
	brkCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "open duration before half-open probing")
	brkProbes := fs.Int("breaker-probes", 2, "consecutive probe successes that close the breaker")
	fs.Parse(args)

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	cfg := serve.DefaultConfig()
	cfg.Addr = *addr
	cfg.QueueDepth = *queue
	cfg.MaxBatch = *maxBatch
	cfg.BatchWindow = *window
	cfg.RequestTimeout = *timeout
	cfg.MaxConcurrentBatches = *batches
	cfg.DisableBatching = *noBatch
	cfg.Breaker = serve.BreakerConfig{
		Disabled:       *noBreaker,
		Window:         *brkWindow,
		MinSamples:     *brkMin,
		FailureRatio:   *brkRatio,
		Cooldown:       *brkCooldown,
		HalfOpenProbes: *brkProbes,
	}
	cfg.Logger = logger

	reg, err := serve.NewRegistry(cfg.Model)
	if err != nil {
		return err
	}
	if *modelPath != "" {
		snap, err := reg.LoadFile(*modelPath)
		if err != nil {
			return err
		}
		logger.Info("model loaded", "path", *modelPath, "version", snap.Version)
	} else {
		mcfg := cfg.Model
		mcfg.Seed = *seed
		m, err := core.New(mcfg)
		if err != nil {
			return err
		}
		snap, err := reg.SetModel(m, "fresh")
		if err != nil {
			return err
		}
		logger.Warn("serving a fresh untrained model (no -model given)", "version", snap.Version)
	}

	srv, err := serve.New(cfg, reg)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *watch != "" {
		go reg.WatchDir(ctx, *watch, *poll, logger)
	}
	errc, err := srv.Start()
	if err != nil {
		return err
	}
	select {
	case <-ctx.Done():
		logger.Info("signal received, draining")
	case err := <-errc:
		if err != nil {
			return err
		}
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	return srv.Shutdown(shCtx)
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "server base URL")
	clients := fs.Int("clients", 8, "concurrent clients")
	requests := fs.Int("requests", 200, "total requests")
	k := fs.Int("k", 5, "beam width per request")
	seed := fs.Int64("seed", 1, "insight generation seed")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request timeout")
	fs.Parse(args)

	opt := serve.DefaultLoadGenOptions()
	opt.URL = *url
	opt.Clients = *clients
	opt.Requests = *requests
	opt.BeamWidth = *k
	opt.Seed = *seed
	opt.Timeout = *timeout

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := serve.RunLoadGen(ctx, opt)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
