// Command experiments regenerates every table and figure of the paper's
// evaluation section (Table IV, Fig. 5, Fig. 6, Fig. 7) plus the ablation
// study and the Section II baseline comparison, over the simulated flow.
//
// Usage:
//
//	experiments [flags] <table4|fig5|fig6|fig7|ablation|baselines|all>
//
// With -data, a previously built dataset is reused; otherwise one is built
// at -scale / -points. Output files are written under -out.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"insightalign/internal/dataset"
	"insightalign/internal/experiments"
	"insightalign/internal/obs"
)

func main() {
	var (
		dataPath = flag.String("data", "", "existing dataset.gob (built if empty)")
		scale    = flag.Float64("scale", 0.15, "suite gate-count scale when building")
		points   = flag.Int("points", 176, "datapoints per design when building")
		seed     = flag.Int64("seed", 1, "dataset seed")
		outDir   = flag.String("out", "results", "output directory")
		quick    = flag.Bool("quick", false, "reduced training budget (smoke run)")
		iters    = flag.Int("iters", 10, "online fine-tuning iterations")
		budget   = flag.Int("budget", 30, "baseline evaluation budget")
		batch    = flag.Int("train-batch", 0, "alignment minibatch size (0 = per-pair updates)")
		workers  = flag.Int("workers", 0, "data-parallel training workers when -train-batch > 0 (0 = NumCPU)")
		journal  = flag.String("journal", "", "write a JSONL run journal (train epochs + online iterations) to this path")
		debug    = flag.String("debug-addr", "", "serve /metrics, /debug/traces and pprof on this sidecar address")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <table4|fig5|fig6|fig7|figs|ablation|baselines|transfer|intentions|all>")
		os.Exit(2)
	}
	dbg, err := obs.StartDebugServer(*debug, nil, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if dbg != nil {
		fmt.Printf("debug endpoints on http://%s/metrics (pprof at /debug/pprof/)\n", dbg.Addr())
		defer dbg.Close()
	}
	what := flag.Arg(0)
	if err := run(what, *dataPath, *scale, *points, *seed, *outDir, *quick, *iters, *budget, *batch, *workers, *journal); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func emitFig5SVGs(emit func(string, string) error, series []experiments.Fig5Series) error {
	for _, s := range series {
		svg, err := experiments.Fig5SVG(s)
		if err != nil {
			return err
		}
		if err := emit("fig5_"+s.Design+".svg", svg); err != nil {
			return err
		}
	}
	return nil
}

func run(what, dataPath string, scale float64, points int, seed int64, outDir string, quick bool, iters, budget, batch, workers int, journalPath string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var ds *dataset.Dataset
	var err error
	if dataPath != "" {
		f, err2 := os.Open(dataPath)
		if err2 != nil {
			return err2
		}
		ds, err = dataset.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded %d datapoints from %s\n", len(ds.Points), dataPath)
	} else {
		opts := dataset.DefaultBuildOptions()
		opts.Scale = scale
		opts.PointsPerDesign = points
		opts.Seed = seed
		fmt.Printf("building dataset (scale %g, %d points/design)...\n", scale, points)
		t0 := time.Now()
		ds, err = dataset.Build(opts)
		if err != nil {
			return err
		}
		fmt.Printf("built %d datapoints in %v\n", len(ds.Points), time.Since(t0))
		// Persist for reuse.
		f, err2 := os.Create(filepath.Join(outDir, "dataset.gob"))
		if err2 == nil {
			_ = ds.Save(f)
			f.Close()
		}
	}

	cfg := experiments.Default()
	if quick {
		cfg = experiments.Quick()
	}
	cfg.OnlineIterations = iters
	cfg.Train.BatchSize = batch
	cfg.Train.Workers = workers
	if journalPath != "" {
		j, err := obs.NewJournal(journalPath)
		if err != nil {
			return err
		}
		cfg.Train.Journal = j
		cfg.OnlineOptions.Journal = j
		fmt.Printf("journaling run to %s\n", journalPath)
	}
	env, err := experiments.NewEnv(ds, cfg)
	if err != nil {
		return err
	}

	needT4 := map[string]bool{"table4": true, "fig5": true, "fig6": true, "fig7": true, "baselines": true, "figs": true, "all": true}
	var t4 *experiments.Table4Result
	if needT4[what] {
		fmt.Println("running Table IV (4-fold CV offline alignment)...")
		t0 := time.Now()
		t4, err = env.RunTable4()
		if err != nil {
			return err
		}
		fmt.Printf("Table IV complete in %v\n", time.Since(t0))
	}

	emit := func(name, content string) error {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	switch what {
	case "table4":
		fmt.Print(t4.Format())
		return emit("table4.txt", t4.Format())
	case "fig5":
		series, err := env.RunFig5(t4, nil)
		if err != nil {
			return err
		}
		if err := emitFig5SVGs(emit, series); err != nil {
			return err
		}
		return emit("fig5.csv", experiments.FormatFig5(series))
	case "fig6":
		var results []*experiments.OnlineResult
		for _, d := range []string{"D10", "D6"} {
			fmt.Printf("online fine-tuning %s (%d iterations)...\n", d, cfg.OnlineIterations)
			r, err := env.RunOnline(t4, d)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		out := experiments.FormatFig6(results)
		fmt.Print(out)
		for _, r := range results {
			svg, err := experiments.Fig6SVG(r)
			if err != nil {
				return err
			}
			if err := emit("fig6_"+r.Design+".svg", svg); err != nil {
				return err
			}
		}
		return emit("fig6.csv", out)
	case "fig7":
		r, err := env.RunOnline(t4, "D10")
		if err != nil {
			return err
		}
		svg, err := experiments.Fig7SVG(env, r)
		if err != nil {
			return err
		}
		if err := emit("fig7.svg", svg); err != nil {
			return err
		}
		return emit("fig7.csv", env.FormatFig7(r))
	case "figs":
		// Every figure in one pass over a single Table IV run.
		if err := emit("table4.txt", t4.Format()); err != nil {
			return err
		}
		series, err := env.RunFig5(t4, nil)
		if err != nil {
			return err
		}
		if err := emit("fig5.csv", experiments.FormatFig5(series)); err != nil {
			return err
		}
		if err := emitFig5SVGs(emit, series); err != nil {
			return err
		}
		var results []*experiments.OnlineResult
		for _, d := range []string{"D10", "D6"} {
			fmt.Printf("online fine-tuning %s...\n", d)
			r, err := env.RunOnline(t4, d)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		if err := emit("fig6.csv", experiments.FormatFig6(results)); err != nil {
			return err
		}
		for _, r := range results {
			svg, err := experiments.Fig6SVG(r)
			if err != nil {
				return err
			}
			if err := emit("fig6_"+r.Design+".svg", svg); err != nil {
				return err
			}
		}
		if err := emit("fig7.csv", env.FormatFig7(results[0])); err != nil {
			return err
		}
		if svg, err := experiments.Fig7SVG(env, results[0]); err != nil {
			return err
		} else if err := emit("fig7.svg", svg); err != nil {
			return err
		}
		trs, iaBest, err := env.RunBaselines(t4, "D6", budget, nil)
		if err != nil {
			return err
		}
		if svg, err := experiments.BaselinesSVG("D6", trs, iaBest); err == nil {
			if err := emit("baselines.svg", svg); err != nil {
				return err
			}
		}
		return emit("baselines.csv", experiments.FormatBaselines("D6", trs, iaBest, cfg.BeamK))
	case "ablation":
		fmt.Println("running ablation (this trains 5 model variants)...")
		ab, err := env.RunAblation()
		if err != nil {
			return err
		}
		fmt.Print(ab.Format())
		return emit("ablation.txt", ab.Format())
	case "baselines":
		trs, iaBest, err := env.RunBaselines(t4, "D6", budget, nil)
		if err != nil {
			return err
		}
		out := experiments.FormatBaselines("D6", trs, iaBest, cfg.BeamK)
		fmt.Print(out)
		if svg, err := experiments.BaselinesSVG("D6", trs, iaBest); err == nil {
			if err := emit("baselines.svg", svg); err != nil {
				return err
			}
		}
		return emit("baselines.csv", out)
	case "transfer":
		fmt.Println("running transfer curve (trains one model per archive size)...")
		points, err := env.RunTransferCurve(nil)
		if err != nil {
			return err
		}
		out := experiments.FormatTransferCurve(points)
		fmt.Print(out)
		return emit("transfer.csv", out)
	case "intentions":
		fmt.Println("running intention sweep (trains one model per intention)...")
		rows, err := env.RunIntentionSweep()
		if err != nil {
			return err
		}
		out := experiments.FormatIntentionSweep(rows)
		fmt.Print(out)
		return emit("intentions.txt", out)
	case "all":
		if err := emit("table4.txt", t4.Format()); err != nil {
			return err
		}
		fmt.Print(t4.Format())
		series, err := env.RunFig5(t4, nil)
		if err != nil {
			return err
		}
		if err := emit("fig5.csv", experiments.FormatFig5(series)); err != nil {
			return err
		}
		if err := emitFig5SVGs(emit, series); err != nil {
			return err
		}
		var results []*experiments.OnlineResult
		for _, d := range []string{"D10", "D6"} {
			fmt.Printf("online fine-tuning %s...\n", d)
			r, err := env.RunOnline(t4, d)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		if err := emit("fig6.csv", experiments.FormatFig6(results)); err != nil {
			return err
		}
		for _, r := range results {
			svg, err := experiments.Fig6SVG(r)
			if err != nil {
				return err
			}
			if err := emit("fig6_"+r.Design+".svg", svg); err != nil {
				return err
			}
		}
		if err := emit("fig7.csv", env.FormatFig7(results[0])); err != nil {
			return err
		}
		if svg, err := experiments.Fig7SVG(env, results[0]); err != nil {
			return err
		} else if err := emit("fig7.svg", svg); err != nil {
			return err
		}
		fmt.Println("running ablation...")
		ab, err := env.RunAblation()
		if err != nil {
			return err
		}
		if err := emit("ablation.txt", ab.Format()); err != nil {
			return err
		}
		fmt.Print(ab.Format())
		trs, iaBest, err := env.RunBaselines(t4, "D6", budget, nil)
		if err != nil {
			return err
		}
		if err := emit("baselines.csv", experiments.FormatBaselines("D6", trs, iaBest, cfg.BeamK)); err != nil {
			return err
		}
		fmt.Println("running transfer curve...")
		points, err := env.RunTransferCurve(nil)
		if err != nil {
			return err
		}
		if err := emit("transfer.csv", experiments.FormatTransferCurve(points)); err != nil {
			return err
		}
		fmt.Println("running intention sweep...")
		rows, err := env.RunIntentionSweep()
		if err != nil {
			return err
		}
		return emit("intentions.txt", experiments.FormatIntentionSweep(rows))
	default:
		return fmt.Errorf("unknown experiment %q", what)
	}
}
