// Command insightalign is the user-facing CLI of the InsightAlign
// reproduction: build the offline dataset, train the recommender, produce
// zero-shot recommendations, run online fine-tuning, and inspect the model
// architecture and catalogs.
//
// Usage:
//
//	insightalign datagen   -out dataset.gob [-scale 0.25] [-points 176] [-seed 1]
//	insightalign train     -data dataset.gob -out model.bin [-epochs 8] [-pairs 400] [-holdout D4,D6]
//	insightalign recommend -data dataset.gob -model model.bin -design D4 [-k 5] [-evaluate]
//	insightalign finetune  -data dataset.gob -model model.bin -design D10 [-iters 10]
//	insightalign arch
//	insightalign report    -design D1 [-recipes a,b] [-heatmap] [-paths N] [-verilog out.v]
//	insightalign explain   -data dataset.gob -model model.bin -design D4
//	insightalign export    -data dataset.gob -out dataset.csv [-insights]
//	insightalign merge     -a one.gob -b two.gob -out merged.gob
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"insightalign"
	"insightalign/internal/core"
	"insightalign/internal/dataset"
	"insightalign/internal/experiments"
	"insightalign/internal/flow"
	"insightalign/internal/insight"
	"insightalign/internal/obs"
	"insightalign/internal/recipe"
	"insightalign/internal/sta"
)

// startDebugSidecar binds the opt-in -debug-addr observability listener
// (/metrics, /debug/traces, /debug/pprof). Empty addr is a no-op.
func startDebugSidecar(addr string) (*obs.DebugServer, error) {
	dbg, err := obs.StartDebugServer(addr, nil, nil)
	if err != nil {
		return nil, err
	}
	if dbg != nil {
		fmt.Printf("debug endpoints on http://%s/metrics (pprof at /debug/pprof/)\n", dbg.Addr())
	}
	return dbg, nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "datagen":
		err = cmdDatagen(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "recommend":
		err = cmdRecommend(os.Args[2:])
	case "finetune":
		err = cmdFinetune(os.Args[2:])
	case "arch":
		err = cmdArch()
	case "report":
		err = cmdReport(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: insightalign <command> [flags]

commands:
  datagen    build the offline (insight, recipe set, QoR) dataset
  train      run offline QoR alignment (Algorithm 1)
  recommend  beam-search top-K recipe sets for a design
  finetune   online fine-tuning loop for one design
  arch       print the Table III architecture, recipes and insight schema
  report     run the flow on a suite design and print the full tool report
  explain    attribute a trained model's recipe choices to insight features
  export     export a dataset as CSV for external analysis
  merge      merge two dataset archives (same scale) into one`)
}

func cmdDatagen(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ExitOnError)
	out := fs.String("out", "dataset.gob", "output path")
	scale := fs.Float64("scale", 0.25, "suite gate-count scale")
	points := fs.Int("points", 176, "datapoints per design")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	opts := insightalign.DefaultDatasetOptions()
	opts.Scale = *scale
	opts.PointsPerDesign = *points
	opts.Seed = *seed
	fmt.Printf("building dataset: 17 designs x %d points at scale %g...\n", *points, *scale)
	ds, err := insightalign.BuildDataset(opts)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.Save(f); err != nil {
		return err
	}
	fmt.Printf("wrote %d datapoints to %s\n", len(ds.Points), *out)
	return nil
}

func loadData(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.Load(f)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "dataset.gob", "dataset path")
	out := fs.String("out", "model.bin", "model output path")
	epochs := fs.Int("epochs", 8, "training epochs")
	pairs := fs.Int("pairs", 400, "max preference pairs per design per epoch")
	lambda := fs.Float64("lambda", 2, "MDPO margin scale")
	seed := fs.Int64("seed", 1, "random seed")
	holdout := fs.String("holdout", "", "comma-separated designs to exclude from training")
	batch := fs.Int("batch", 0, "minibatch size (0 = per-pair updates, Algorithm 1)")
	workers := fs.Int("workers", 0, "data-parallel training workers when -batch > 0 (0 = NumCPU)")
	journal := fs.String("journal", "", "write a JSONL run journal (per-epoch stats) to this path")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/traces and pprof on this sidecar address")
	fs.Parse(args)

	dbg, err := startDebugSidecar(*debugAddr)
	if err != nil {
		return err
	}
	defer dbg.Close()
	ds, err := loadData(*data)
	if err != nil {
		return err
	}
	train := ds.Points
	if *holdout != "" {
		train, _ = ds.Split(splitList(*holdout))
	}
	cfg := insightalign.DefaultModelConfig()
	cfg.Seed = *seed
	model, err := insightalign.NewRecommender(cfg)
	if err != nil {
		return err
	}
	topt := insightalign.DefaultTrainOptions()
	topt.Epochs = *epochs
	topt.MaxPairsPerDesign = *pairs
	topt.Lambda = *lambda
	topt.Seed = *seed
	topt.BatchSize = *batch
	topt.Workers = *workers
	if *journal != "" {
		j, err := obs.NewJournal(*journal)
		if err != nil {
			return err
		}
		topt.Journal = j
	}
	topt.Progress = func(epoch int, es core.EpochStats) {
		fmt.Printf("epoch %d: %d pairs, loss %.4f, pair accuracy %.3f, %.0f pairs/s\n",
			epoch, es.Pairs, es.MeanLoss, es.PairAccuracy, es.PairsPerSec)
	}
	if _, err := model.AlignmentTrain(train, topt); err != nil {
		return err
	}
	// Crash-safe write: a serving registry watching this path must never
	// see a truncated model.
	if err := insightalign.SaveModelFile(*out, model); err != nil {
		return err
	}
	fmt.Printf("wrote model to %s\n", *out)
	return nil
}

func cmdRecommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	data := fs.String("data", "dataset.gob", "dataset path")
	modelPath := fs.String("model", "model.bin", "model path")
	design := fs.String("design", "", "design name (e.g. D4)")
	k := fs.Int("k", 5, "beam width / number of recommendations")
	evaluate := fs.Bool("evaluate", false, "run the flow on each recommendation")
	fs.Parse(args)
	if *design == "" {
		return fmt.Errorf("-design is required")
	}
	ds, err := loadData(*data)
	if err != nil {
		return err
	}
	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	iv, ok := ds.InsightOf(*design)
	if !ok {
		return fmt.Errorf("design %s not in dataset", *design)
	}
	cands := model.BeamSearch(iv.Slice(), *k)
	fmt.Printf("top-%d recipe sets for %s:\n", *k, *design)
	for i, c := range cands {
		fmt.Printf("#%d logprob %.3f  recipes:", i+1, c.LogProb)
		for _, r := range recipe.Catalog() {
			if c.Set[r.ID] {
				fmt.Printf(" %s", r.Name)
			}
		}
		fmt.Println()
	}
	if !*evaluate {
		return nil
	}
	env, err := experiments.NewEnv(ds, experiments.Default())
	if err != nil {
		return err
	}
	sets := make([]recipe.Set, len(cands))
	for i, c := range cands {
		sets[i] = c.Set
	}
	evals, err := env.EvaluateSets(*design, sets, 12345)
	if err != nil {
		return err
	}
	best, _ := ds.BestKnown(*design)
	fmt.Printf("\n%-4s %12s %12s %9s\n", "#", "TNS(ns)", "Power(mW)", "QoR")
	for i, ev := range evals {
		fmt.Printf("#%-3d %12.4g %12.4g %9.3f\n", i+1, ev.Metrics.TNSns, ev.Metrics.PowerMW, ev.QoR)
	}
	fmt.Printf("best known: TNS %.4g ns, power %.4g mW, QoR %.3f\n",
		best.Metrics.TNSns, best.Metrics.PowerMW, best.QoR)
	return nil
}

func cmdFinetune(args []string) error {
	fs := flag.NewFlagSet("finetune", flag.ExitOnError)
	data := fs.String("data", "dataset.gob", "dataset path")
	modelPath := fs.String("model", "model.bin", "model path")
	design := fs.String("design", "", "design name")
	iters := fs.Int("iters", 10, "online iterations")
	batch := fs.Int("batch", 0, "MDPO minibatch size (0 = per-pair updates)")
	workers := fs.Int("workers", 0, "data-parallel update workers when -batch > 0 (0 = NumCPU)")
	journal := fs.String("journal", "", "write a JSONL run journal (per-iteration trajectory) to this path")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/traces and pprof on this sidecar address")
	flowTimeout := fs.Duration("flow-timeout", 0, "per-flow-run deadline; hung runs are abandoned and retried (0 = none)")
	flowRetries := fs.Int("flow-retries", 0, "retries per flow run after a timeout or transient failure")
	flowBackoff := fs.Duration("flow-backoff", 0, "base retry backoff, doubled per attempt (0 = 10ms default)")
	fs.Parse(args)
	if *design == "" {
		return fmt.Errorf("-design is required")
	}
	dbg, err := startDebugSidecar(*debugAddr)
	if err != nil {
		return err
	}
	defer dbg.Close()
	ds, err := loadData(*data)
	if err != nil {
		return err
	}
	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	env, err := experiments.NewEnv(ds, experiments.Default())
	if err != nil {
		return err
	}
	iv, _ := ds.InsightOf(*design)
	st, err := ds.StatsOf(*design)
	if err != nil {
		return err
	}
	runner := insightalign.NewFlowRunner(env.Designs[*design])
	tunerOpt := insightalign.DefaultTunerOptions()
	tunerOpt.BatchPairs = *batch
	tunerOpt.Workers = *workers
	tunerOpt.FlowTimeout = *flowTimeout
	tunerOpt.FlowRetries = *flowRetries
	tunerOpt.FlowBackoff = *flowBackoff
	if *journal != "" {
		j, err := obs.NewJournal(*journal)
		if err != nil {
			return err
		}
		tunerOpt.Journal = j
	}
	tuner, err := insightalign.NewTuner(model, runner, iv, st, ds.Intention, tunerOpt)
	if err != nil {
		return err
	}
	best, _ := ds.BestKnown(*design)
	fmt.Printf("online fine-tuning %s (best known QoR %.3f)\n", *design, best.QoR)
	fmt.Printf("%-5s %12s %12s %9s %9s %6s\n", "iter", "power(mW)", "TNS(ns)", "bestQoR", "avgTopK", "fails")
	for i := 0; i < *iters; i++ {
		rec, err := tuner.Iterate()
		if err != nil {
			return err
		}
		note := ""
		if rec.Recovered {
			note = " (update rolled back)"
		}
		fmt.Printf("%-5d %12.4g %12.4g %9.3f %9.3f %6d%s\n",
			rec.Iteration, rec.PowerOfBest, rec.TNSOfBest, rec.BestQoR, rec.AvgTopK, rec.Failures, note)
	}
	return nil
}

func cmdArch() error {
	model, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
	if err != nil {
		return err
	}
	fmt.Println("Model architecture (Table III):")
	fmt.Println(model.ArchitectureTable())
	fmt.Printf("Recipe catalog (Table II): %d recipes\n", len(recipe.Catalog()))
	for _, r := range recipe.Catalog() {
		fmt.Printf("  %2d %-26s [%s] %s\n", r.ID, r.Name, r.Category, r.Description)
	}
	fmt.Printf("\nInsight schema (Table I): %d features\n", insight.Dim)
	names := insight.FeatureNames()
	if len(names) == 0 {
		fmt.Println("  (feature names populate after the first extraction; run datagen)")
	}
	for i, n := range names {
		fmt.Printf("  %2d %s\n", i, n)
	}
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	design := fs.String("design", "D1", "suite design name")
	scale := fs.Float64("scale", 0.15, "suite gate-count scale")
	recipes := fs.String("recipes", "", "comma-separated recipe names to apply")
	heatmap := fs.Bool("heatmap", false, "print the placement congestion heatmap")
	paths := fs.Int("paths", 0, "print the N worst timing paths")
	verilog := fs.String("verilog", "", "also write structural Verilog to this path")
	seed := fs.Int64("seed", 1, "flow run seed")
	fs.Parse(args)

	suite, err := insightalign.Suite(*scale)
	if err != nil {
		return err
	}
	var target *insightalign.Design
	for _, d := range suite {
		if d.Name == *design {
			target = d
		}
	}
	if target == nil {
		return fmt.Errorf("design %s not in suite (D1..D17)", *design)
	}
	var set insightalign.RecipeSet
	for _, name := range splitList(*recipes) {
		r, ok := recipe.ByName(name)
		if !ok {
			return fmt.Errorf("unknown recipe %q (see 'insightalign arch')", name)
		}
		set[r.ID] = true
	}
	params := insightalign.ApplyRecipes(insightalign.DefaultFlowParams(), set)
	runner := insightalign.NewFlowRunner(target)
	m, tr, err := runner.Run(params, *seed)
	if err != nil {
		return err
	}
	if err := flow.WriteReport(os.Stdout, m, tr); err != nil {
		return err
	}
	if *heatmap {
		fmt.Println()
		if err := tr.Placement.WriteHeatmap(os.Stdout, tr.Design); err != nil {
			return err
		}
	}
	if *paths > 0 {
		fmt.Println()
		ps, err := sta.ReportPaths(tr.Design, tr.Route, tr.CTS, *paths)
		if err != nil {
			return err
		}
		for i, p := range ps {
			fmt.Printf("-- path %d --\n%s\n", i+1, p)
		}
	}
	if *verilog != "" {
		f, err := os.Create(*verilog)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := target.WriteVerilog(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *verilog)
	}
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	data := fs.String("data", "dataset.gob", "dataset path")
	modelPath := fs.String("model", "model.bin", "model path")
	design := fs.String("design", "", "design name")
	top := fs.Int("top", 4, "influential features per recipe")
	fs.Parse(args)
	if *design == "" {
		return fmt.Errorf("-design is required")
	}
	ds, err := loadData(*data)
	if err != nil {
		return err
	}
	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	iv, ok := ds.InsightOf(*design)
	if !ok {
		return fmt.Errorf("design %s not in dataset", *design)
	}
	atts := model.Explain(iv.Slice(), *top)
	fmt.Printf("design %s:\n%s", *design, core.FormatExplanation(atts))
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	data := fs.String("data", "dataset.gob", "dataset path")
	out := fs.String("out", "dataset.csv", "CSV output path")
	insights := fs.Bool("insights", false, "include the 72 insight columns")
	fs.Parse(args)
	ds, err := loadData(*data)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.WriteCSV(f, *insights); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows to %s\n", len(ds.Points), *out)
	for _, s := range ds.Summarize() {
		fmt.Printf("  %-4s %4d points, QoR [%.2f, %.2f], mean power %.4g mW, mean TNS %.4g ns\n",
			s.Design, s.Points, s.WorstQoR, s.BestQoR, s.MeanPower, s.MeanTNS)
	}
	return nil
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	a := fs.String("a", "", "first dataset")
	b := fs.String("b", "", "second dataset")
	out := fs.String("out", "merged.gob", "output path")
	fs.Parse(args)
	if *a == "" || *b == "" {
		return fmt.Errorf("-a and -b are required")
	}
	dsA, err := loadData(*a)
	if err != nil {
		return err
	}
	dsB, err := loadData(*b)
	if err != nil {
		return err
	}
	if err := dsA.Merge(dsB); err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := dsA.Save(f); err != nil {
		return err
	}
	fmt.Printf("merged: %d points over %d designs -> %s\n", len(dsA.Points), len(dsA.Designs), *out)
	return nil
}

func loadModel(path string) (*insightalign.Recommender, error) {
	model, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
	if err != nil {
		return nil, err
	}
	if err := insightalign.LoadModelFile(path, model); err != nil {
		return nil, err
	}
	return model, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
