// Command insightalign-router runs the fleet tier: a consistent-hash
// request router that fans /v1/recommend traffic over N replica backends
// with cache-affinity routing, bounded-load fallback, per-replica health
// polling and circuit breaking, hedged requests, and bounded admission
// with load shedding. (This is the serving fleet router — distinct from
// internal/router, the EDA global router that routes wires, not
// requests.) The router's own observability surface is mounted on its
// listener: /metrics, /debug/traces (merged across the router→replica
// hop), /debug/pprof/, /debug/slo (per-replica and fleet-wide burn-rate
// verdicts), /debug/fleet (every replica's /metrics merged under
// replica="..." labels), /debug/dash (the operator text dashboard:
// replica health, breaker state, version mix, SLO table), /debug/profiles
// (the continuous-profiling ring, on by default), and an aggregated
// fleet /healthz.
//
// Usage:
//
//	insightalign-router route -replicas http://h1:8080,http://h2:8080 [-addr :8090]
//	                          [-max-inflight 32] [-queue 64] [-queue-wait 100ms]
//	                          [-hedge-quantile 0.95] [-hedge-min-delay 5ms] [-no-hedge]
//	                          [-health-interval 500ms] [-eject-after 3]
//	                          [-profile-ring=false] [-profile-dir DIR]
//	insightalign-router route -spawn 3 [-seed 1] ...
//	insightalign-router bench [-clients 16] [-requests 480] [-k 5] [-seed 1]
//
// route with -spawn N boots N in-process replicas on loopback ports (each
// with its own fresh model) behind the router — the one-command fleet for
// demos and load tests. bench runs the scaling sweep plus the replica
// kill/recovery cycle and prints the JSON report consumed by
// cmd/benchjson -router (see `make bench-router`).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"insightalign/internal/fleet"
	"insightalign/internal/obs"
	"insightalign/internal/serve"
)

func main() {
	args := os.Args[1:]
	mode := "route"
	if len(args) > 0 && (args[0] == "route" || args[0] == "bench") {
		mode = args[0]
		args = args[1:]
	}
	var err error
	switch mode {
	case "route":
		err = cmdRoute(args)
	case "bench":
		err = cmdBench(args)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func cmdRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "router listen address")
	replicas := fs.String("replicas", "", "comma-separated replica base URLs")
	spawn := fs.Int("spawn", 0, "boot N in-process replicas on loopback instead of -replicas")
	seed := fs.Int64("seed", 1, "model seed for -spawn replicas")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
	loadFactor := fs.Float64("load-factor", 1.25, "bounded-load consistent-hashing factor c")
	maxInflight := fs.Int("max-inflight", 32, "concurrent forwards per replica")
	queue := fs.Int("queue", 64, "admission waiters per replica beyond max-inflight")
	queueWait := fs.Duration("queue-wait", 100*time.Millisecond, "longest wait for an admission slot before shedding")
	timeout := fs.Duration("timeout", 15*time.Second, "end-to-end routed request deadline")
	attempts := fs.Int("attempts", 3, "max distinct replicas tried per request (failover budget)")
	noHedge := fs.Bool("no-hedge", false, "disable hedged requests")
	hedgeQ := fs.Float64("hedge-quantile", 0.95, "latency percentile that arms the hedge timer")
	hedgeMin := fs.Duration("hedge-min-delay", 5*time.Millisecond, "floor on the hedge trigger")
	hedgeMax := fs.Int("hedge-max", 8, "fleet-wide cap on in-flight hedges")
	healthEvery := fs.Duration("health-interval", 500*time.Millisecond, "/healthz polling period")
	ejectAfter := fs.Int("eject-after", 3, "consecutive failed polls that eject a replica from the ring")
	brkWindow := fs.Int("breaker-window", 16, "sliding window of forward outcomes per replica")
	brkMin := fs.Int("breaker-min-samples", 4, "outcomes required before a replica breaker can trip")
	brkRatio := fs.Float64("breaker-threshold", 0.5, "failure ratio that opens a replica breaker")
	brkCooldown := fs.Duration("breaker-cooldown", 2*time.Second, "open duration before half-open probing")
	brkProbes := fs.Int("breaker-probes", 2, "probe successes that close a replica breaker")
	profileRing := fs.Bool("profile-ring", true, "continuous profiling: periodic CPU+heap pprof captures into a bounded on-disk ring at /debug/profiles")
	profileDir := fs.String("profile-dir", "", "profile ring directory (default: <tmp>/insightalign-router-profiles)")
	profileEvery := fs.Duration("profile-interval", 60*time.Second, "profile capture period")
	profileKeep := fs.Int("profile-keep", 8, "newest profiles kept per kind in the ring")
	fs.Parse(args)

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	cfg := fleet.DefaultConfig()
	cfg.Addr = *addr
	cfg.VNodesPerReplica = *vnodes
	cfg.LoadFactor = *loadFactor
	cfg.MaxInflight = *maxInflight
	cfg.QueueDepth = *queue
	cfg.QueueWait = *queueWait
	cfg.RequestTimeout = *timeout
	cfg.MaxAttempts = *attempts
	cfg.DisableHedging = *noHedge
	cfg.HedgeQuantile = *hedgeQ
	cfg.HedgeMinDelay = *hedgeMin
	cfg.HedgeMaxConcurrent = *hedgeMax
	cfg.HealthInterval = *healthEvery
	cfg.EjectAfter = *ejectAfter
	cfg.Breaker = serve.BreakerConfig{
		Window:         *brkWindow,
		MinSamples:     *brkMin,
		FailureRatio:   *brkRatio,
		Cooldown:       *brkCooldown,
		HalfOpenProbes: *brkProbes,
	}
	cfg.Logger = logger
	if *profileRing {
		dir := *profileDir
		if dir == "" {
			dir = filepath.Join(os.TempDir(), "insightalign-router-profiles")
		}
		prof, err := obs.StartProfiler(obs.ProfilerConfig{
			Dir: dir, Interval: *profileEvery, Keep: *profileKeep,
		})
		if err != nil {
			return fmt.Errorf("profile ring: %w", err)
		}
		defer prof.Close()
		cfg.Profiler = prof
		logger.Info("continuous profiling on", "dir", dir,
			"interval", profileEvery.String(), "keep", *profileKeep)
	}

	if *spawn > 0 && *replicas != "" {
		return fmt.Errorf("-spawn and -replicas are mutually exclusive")
	}
	var lf *fleet.LocalFleet
	switch {
	case *spawn > 0:
		var err error
		lf, err = fleet.StartLocalFleet(*spawn, fleet.LocalOptions{Seed: *seed, Logger: logger})
		if err != nil {
			return err
		}
		defer lf.Close()
		cfg.Replicas = lf.URLs()
		logger.Info("spawned local replicas", "urls", cfg.Replicas)
	case *replicas != "":
		for _, u := range strings.Split(*replicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.Replicas = append(cfg.Replicas, u)
			}
		}
	default:
		return fmt.Errorf("either -replicas or -spawn is required")
	}

	rt, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc, err := rt.Start()
	if err != nil {
		return err
	}
	logger.Info("fleet router up", "addr", rt.Addr(), "replicas", len(cfg.Replicas))
	select {
	case <-ctx.Done():
		logger.Info("signal received, draining")
	case err := <-errc:
		if err != nil {
			return err
		}
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	return rt.Shutdown(shCtx)
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	clients := fs.Int("clients", 16, "concurrent loadgen clients per phase")
	requests := fs.Int("requests", 480, "requests per loadgen phase")
	k := fs.Int("k", 5, "beam width per request")
	seed := fs.Int64("seed", 1, "model + loadgen seed")
	killFleet := fs.Int("kill-fleet", 3, "fleet size for the kill/recovery cycle")
	counts := fs.String("replica-counts", "1,2,4", "comma-separated fleet sizes for the scaling sweep")
	fs.Parse(args)

	opt := fleet.DefaultBenchOptions()
	opt.Clients = *clients
	opt.Requests = *requests
	opt.BeamWidth = *k
	opt.Seed = *seed
	opt.KillFleetSize = *killFleet
	opt.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	opt.ReplicaCounts = opt.ReplicaCounts[:0]
	for _, s := range strings.Split(*counts, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 1 {
			return fmt.Errorf("bad -replica-counts entry %q", s)
		}
		opt.ReplicaCounts = append(opt.ReplicaCounts, n)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := fleet.RunFleetBench(ctx, opt)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
