package insightalign_test

import (
	"bytes"
	"testing"

	"insightalign"
)

// The facade test exercises the whole public API surface end to end at tiny
// scale: suite generation, flow runs, recipes, insights, dataset, training,
// recommendation, persistence, online tuning, and baselines.

func tinyDataset(t *testing.T) *insightalign.Dataset {
	t.Helper()
	opts := insightalign.DefaultDatasetOptions()
	opts.Scale = 0.05
	opts.PointsPerDesign = 8
	ds, err := insightalign.BuildDataset(opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSuiteAndSpecs(t *testing.T) {
	specs := insightalign.SuiteSpecs(0.05)
	if len(specs) != 17 {
		t.Fatalf("got %d specs", len(specs))
	}
	designs, err := insightalign.Suite(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) != 17 {
		t.Fatalf("got %d designs", len(designs))
	}
	if designs[0].Name != "D1" || designs[16].Name != "D17" {
		t.Fatal("suite order wrong")
	}
}

func TestGenerateDesignAndFlow(t *testing.T) {
	d, err := insightalign.GenerateDesign(insightalign.DesignSpec{
		Name: "api", Seed: 1, Gates: 200, SeqFraction: 0.25, Depth: 8,
		TechName: "N28", ClockTightness: 1.1, HVTFraction: 0.3, LVTFraction: 0.1,
		Locality: 0.5, FanoutSkew: 0.3, ShortPathFraction: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	runner := insightalign.NewFlowRunner(d)
	m, tr, err := runner.Run(insightalign.DefaultFlowParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.PowerMW <= 0 {
		t.Fatal("no power")
	}
	iv := insightalign.ExtractInsight(m, tr)
	if len(iv.Slice()) != insightalign.InsightDim {
		t.Fatal("wrong insight width")
	}
	if len(insightalign.InsightFeatureNames()) != insightalign.InsightDim {
		t.Fatal("feature names missing")
	}
}

func TestRecipesAndApply(t *testing.T) {
	rs := insightalign.Recipes()
	if len(rs) != insightalign.NumRecipes {
		t.Fatalf("catalog size %d", len(rs))
	}
	var s insightalign.RecipeSet
	s[0] = true
	p := insightalign.ApplyRecipes(insightalign.DefaultFlowParams(), s)
	if p == insightalign.DefaultFlowParams() {
		t.Fatal("recipe had no effect")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndZeroShot(t *testing.T) {
	ds := tinyDataset(t)
	model, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split([]string{"D8"})
	if len(test) != 8 {
		t.Fatalf("holdout has %d points", len(test))
	}
	topt := insightalign.DefaultTrainOptions()
	topt.Epochs = 2
	topt.MaxPairsPerDesign = 50
	stats, err := model.AlignmentTrain(train, topt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalPairs == 0 {
		t.Fatal("no pairs")
	}
	iv, ok := ds.InsightOf("D8")
	if !ok {
		t.Fatal("no insight")
	}
	cands := model.BeamSearch(iv.Slice(), 5)
	if len(cands) != 5 {
		t.Fatal("wrong candidate count")
	}

	// Persistence round trip through the facade.
	var buf bytes.Buffer
	if err := insightalign.SaveModel(&buf, model); err != nil {
		t.Fatal(err)
	}
	clone, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := insightalign.LoadModel(&buf, clone); err != nil {
		t.Fatal(err)
	}
	c2 := clone.BeamSearch(iv.Slice(), 5)
	for i := range cands {
		if cands[i].Set != c2[i].Set {
			t.Fatal("loaded model recommends differently")
		}
	}
}

func TestDatasetPersistenceFacade(t *testing.T) {
	ds := tinyDataset(t)
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := insightalign.LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(ds.Points) {
		t.Fatal("round trip lost points")
	}
}

func TestQoRFacade(t *testing.T) {
	in := insightalign.DefaultIntention()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	ds := tinyDataset(t)
	st, err := ds.StatsOf("D1")
	if err != nil {
		t.Fatal(err)
	}
	pts := ds.PointsOf("D1")
	s := insightalign.ScoreQoR(pts[0].Metrics, st, in)
	if s != pts[0].QoR {
		t.Fatalf("facade score %g != dataset score %g", s, pts[0].QoR)
	}
}

func TestTunerFacade(t *testing.T) {
	ds := tinyDataset(t)
	designs, err := insightalign.Suite(0.05)
	if err != nil {
		t.Fatal(err)
	}
	var d *insightalign.Design
	for _, x := range designs {
		if x.Name == "D16" {
			d = x
		}
	}
	model, err := insightalign.NewRecommender(insightalign.DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	iv, _ := ds.InsightOf("D16")
	st, err := ds.StatsOf("D16")
	if err != nil {
		t.Fatal(err)
	}
	opt := insightalign.DefaultTunerOptions()
	opt.K = 2
	opt.MDPOPairsPerIter = 10
	tuner, err := insightalign.NewTuner(model, insightalign.NewFlowRunner(d), iv, st, ds.Intention, opt)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tuner.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Evaluations) != 2 {
		t.Fatal("wrong evaluation count")
	}
}

func TestBaselineFacade(t *testing.T) {
	for _, name := range []string{"random", "bo", "aco"} {
		opt, err := insightalign.NewBaseline(name, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		sets := opt.Propose(3)
		if len(sets) != 3 {
			t.Fatalf("%s proposed %d sets", name, len(sets))
		}
		opt.Observe(sets[0], 1.0)
	}
	if _, err := insightalign.NewBaseline("bogus", 1, 8); err == nil {
		t.Fatal("expected error")
	}
}
